#ifndef OODGNN_UTIL_FLAGS_H_
#define OODGNN_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace oodgnn {

/// One parsed `--tenant-quota` entry (see Flags::GetTenantQuotas).
/// Mirrors serve::TenantQuotaSpec without depending on src/serve.
struct TenantQuotaFlag {
  std::string tenant;
  double tokens_per_sec = 0.0;
  double burst = 1.0;
};

/// Minimal command-line flag parser for the benchmark and example
/// binaries. Accepts "--name=value", "--name value" and boolean
/// "--name" forms; everything else is collected as a positional
/// argument.
class Flags {
 public:
  /// Parses argv. Aborts on a malformed flag (e.g. "--=x").
  Flags(int argc, char** argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  /// Typed getters returning `fallback` when the flag is absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int GetInt(const std::string& name, int fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Worker-thread count for the compute backend: the `--threads` flag
  /// if given, else the OODGNN_THREADS environment variable, else
  /// `fallback`. Pass the result to SetBackendThreads()
  /// (src/tensor/backend.h); values <= 1 select the serial backend.
  int GetThreads(int fallback = 1) const;

  /// Compiled/arena execution toggle for no-grad forwards: the
  /// `--compiled` flag if given, else the OODGNN_COMPILED environment
  /// variable, else `fallback`. Pass the result to
  /// SetCompiledEnabled() (src/tensor/arena.h).
  bool GetCompiled(bool fallback = false) const;

  /// Compiled (plan-then-execute) *training* toggle: the
  /// `--compiled-train` flag if given, else the OODGNN_COMPILED_TRAIN
  /// environment variable, else `fallback`. Pass the result to
  /// SetCompiledTrainEnabled() (src/tensor/arena.h).
  bool GetCompiledTrain(bool fallback = false) const;

  /// Batch-shape bucketing quanta for compiled training: node and edge
  /// counts are padded up to these multiples to form the plan-bucket
  /// key, so an epoch's slightly-varying batch shapes share a small
  /// fixed set of plans. `--train-bucket-nodes` /
  /// `--train-bucket-edges` flags, else OODGNN_TRAIN_BUCKET_NODES /
  /// OODGNN_TRAIN_BUCKET_EDGES, else `fallback`.
  int GetTrainBucketNodes(int fallback = 64) const;
  int GetTrainBucketEdges(int fallback = 256) const;

  /// Int8 weight quantization toggle for the inference engine: the
  /// `--quantize` flag if given, else the OODGNN_QUANTIZE environment
  /// variable, else `fallback`. Maps to
  /// serve::InferenceOptions::quantize (kOn/kOff); training is never
  /// affected.
  bool GetQuantize(bool fallback = false) const;

  /// Metrics-exporter output prefix: the `--metrics-out` flag if
  /// given, else the OODGNN_METRICS_OUT environment variable, else
  /// `fallback` (empty means "exporter off"). Pass the result to
  /// obs::StartGlobalExporter (src/obs/exporter.h).
  std::string GetMetricsOut(const std::string& fallback = "") const;

  /// Exporter tick interval: the `--metrics-interval-ms` flag if
  /// given, else the OODGNN_METRICS_INTERVAL_MS environment variable,
  /// else `fallback`.
  int GetMetricsIntervalMs(int fallback = 1000) const;

  // Serving-policy flags (src/serve/scheduler.h), shared by the load
  // generator and the serving examples so every binary exposes the
  // same admission-control surface.

  /// Per-worker in-flight slot budget for continuous batching: the
  /// `--max-inflight` flag, else `fallback` (0 = classic micro-batch
  /// windows). Maps to serve::InferenceOptions::max_inflight.
  int GetMaxInflight(int fallback = 0) const;

  /// Relative request deadline in microseconds: the `--deadline-us`
  /// flag, else `fallback` (0 = none). Maps to
  /// serve::SubmitOptions::deadline_us (or the scheduler's
  /// default_deadline_us).
  std::int64_t GetDeadlineUs(std::int64_t fallback = 0) const;

  /// Burn-rate load shedding toggle: the `--shed-on-slo` flag, else
  /// `fallback`. Maps to serve::SchedulerOptions::shed_on_slo.
  bool GetShedOnSlo(bool fallback = false) const;

  /// Token-bucket quotas parsed from `--tenant-quota` entries of the
  /// form "name:tokens_per_sec" or "name:tokens_per_sec:burst",
  /// comma-separated for multiple tenants
  /// (e.g. --tenant-quota=free:100,batch:10:50). Aborts on a malformed
  /// entry. Empty when the flag is absent.
  std::vector<TenantQuotaFlag> GetTenantQuotas() const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace oodgnn

#endif  // OODGNN_UTIL_FLAGS_H_
