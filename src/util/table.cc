#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace oodgnn {

ResultTable::ResultTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OODGNN_CHECK(!headers_.empty());
}

void ResultTable::AddRow(std::vector<std::string> cells) {
  OODGNN_CHECK_EQ(cells.size(), headers_.size())
      << "row width must match header width";
  rows_.push_back(std::move(cells));
}

std::string ResultTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  std::ostringstream out;
  render_row(headers_, out);
  for (size_t c = 0; c < widths.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) render_row(row, out);
  return out.str();
}

std::string ResultTable::ToCsv() const {
  std::ostringstream out;
  auto render = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  render(headers_);
  for (const auto& row : rows_) render(row);
  return out.str();
}

void ResultTable::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace oodgnn
