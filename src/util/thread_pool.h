#ifndef OODGNN_UTIL_THREAD_POOL_H_
#define OODGNN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oodgnn {

/// Fixed pool of worker threads executing statically partitioned index
/// ranges. The partition of [0, n) depends only on n and the pool size,
/// never on timing, so any kernel whose chunks own disjoint output rows
/// produces bitwise-identical results on every run and thread count.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates
  /// as worker 0). `num_threads < 1` is clamped to 1.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Must not be called while a ParallelFor is live.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Splits [0, n) into `num_threads()` contiguous chunks and runs
  /// fn(begin, end) for every non-empty chunk, blocking until all are
  /// done. Chunk i runs on worker i; chunk 0 runs on the caller.
  /// Reentrant calls from inside a worker run the whole range inline
  /// (no nested parallelism), so kernels may freely compose. Safe to
  /// call concurrently from several external threads (the serving
  /// path): one caller at a time dispatches to the pool, everyone else
  /// runs their range inline — results are bitwise identical either
  /// way, because chunking never changes a kernel's arithmetic.
  void ParallelFor(int n, const std::function<void(int, int)>& fn);

  /// Contiguous chunk `index` of `chunks` over [0, n).
  static std::pair<int, int> Chunk(int n, int chunks, int index) {
    const long lo = static_cast<long>(n) * index / chunks;
    const long hi = static_cast<long>(n) * (index + 1) / chunks;
    return {static_cast<int>(lo), static_cast<int>(hi)};
  }

  /// True when the calling thread is a pool worker.
  static bool InWorker();

 private:
  void WorkerLoop(int worker_index);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* job_ = nullptr;  // guarded by mu_
  int job_n_ = 0;                                       // guarded by mu_
  long generation_ = 0;                                 // guarded by mu_
  int pending_ = 0;                                     // guarded by mu_
  bool shutdown_ = false;                               // guarded by mu_
  // Held by the one external thread currently dispatching to the pool.
  // Other external callers fail the try_lock and run inline; the
  // dispatcher's own re-entry from chunk 0 is caught by a thread-local
  // flag (try_lock on an owned std::mutex is undefined).
  std::mutex dispatch_mu_;
};

}  // namespace oodgnn

#endif  // OODGNN_UTIL_THREAD_POOL_H_
