#include "src/util/file.h"

#include <cstdio>
#include <memory>

namespace oodgnn {
namespace {

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool WriteStringToFile(const std::string& path, const std::string& content) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) return false;
  if (!content.empty() &&
      std::fwrite(content.data(), 1, content.size(), file.get()) !=
          content.size()) {
    return false;
  }
  return true;
}

bool ReadFileToString(const std::string& path, std::string* content) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) return false;
  content->clear();
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    content->append(buffer, read);
  }
  return std::ferror(file.get()) == 0;
}

bool FileExists(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  return file != nullptr;
}

}  // namespace oodgnn
