#ifndef OODGNN_UTIL_RNG_H_
#define OODGNN_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace oodgnn {

/// Deterministic random number generator used by every stochastic
/// component in the library. Wraps std::mt19937_64 with convenience
/// samplers; copies are cheap and independent, and `Fork` derives a
/// decorrelated child stream so sub-components can consume randomness
/// without perturbing the parent sequence.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles the given index vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Returns a random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Derives an independent child generator. The child's seed depends on
  /// the parent state, so repeated forks yield distinct streams.
  Rng Fork();

  /// Serializes the engine state as text (the <random> stream format:
  /// whitespace-separated decimal words). Restoring it reproduces the
  /// exact output sequence, so checkpointed runs resume bit-identically.
  std::string SaveState() const;

  /// Restores a state produced by SaveState. Returns false (leaving the
  /// engine untouched) if the string is not a valid serialized state.
  bool LoadState(const std::string& state);

  /// Direct access for interoperating with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace oodgnn

#endif  // OODGNN_UTIL_RNG_H_
