#include "src/util/logging.h"

#include <atomic>
#include <cstdio>

namespace oodgnn {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // File/line prefixes are only useful for debugging output.
  if (level == LogLevel::kDebug) stream_ << file << ":" << line << " ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[oodgnn %s] %s\n", LevelName(level_),
               stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace oodgnn
