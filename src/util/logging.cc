#include "src/util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace oodgnn {
namespace {

constexpr int kUninitializedLevel = -1;

/// Parses OODGNN_LOG_LEVEL ("debug"/"info"/"warning"/"warn"/"error",
/// case-insensitive, or 0–3). Returns kInfo when unset or unparseable.
int LevelFromEnv() {
  const char* env = std::getenv("OODGNN_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (std::isdigit(static_cast<unsigned char>(env[0]))) {
    const int v = std::atoi(env);
    if (v >= 0 && v <= static_cast<int>(LogLevel::kError)) return v;
    return static_cast<int>(LogLevel::kInfo);
  }
  std::string name;
  for (const char* p = env; *p != '\0'; ++p) {
    name.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (name == "debug") return static_cast<int>(LogLevel::kDebug);
  if (name == "info") return static_cast<int>(LogLevel::kInfo);
  if (name == "warning" || name == "warn") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (name == "error") return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_min_level{kUninitializedLevel};

/// Lazily resolves the env default so the variable is honored no matter
/// how early the first log statement runs (a racing first read computes
/// the same value twice, which is benign).
int MinLevel() {
  int level = g_min_level.load(std::memory_order_relaxed);
  if (level == kUninitializedLevel) {
    level = LevelFromEnv();
    g_min_level.store(level, std::memory_order_relaxed);
  }
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(MinLevel()); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // File/line prefixes are only useful for debugging output.
  if (level == LogLevel::kDebug) stream_ << file << ":" << line << " ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < MinLevel()) return;
  std::fprintf(stderr, "[oodgnn %s] %s\n", LevelName(level_),
               stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace oodgnn
