#include "src/util/flags.h"

#include <cstdlib>

#include "src/util/check.h"

namespace oodgnn {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    OODGNN_CHECK(!body.empty()) << "bare '--' is not a valid flag";
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      OODGNN_CHECK(!name.empty()) << "malformed flag: " << arg;
      values_[name] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Flags::GetInt(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atoi(it->second.c_str());
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

int Flags::GetThreads(int fallback) const {
  if (Has("threads")) return GetInt("threads", fallback);
  const char* env = std::getenv("OODGNN_THREADS");
  if (env != nullptr && *env != '\0') return std::atoi(env);
  return fallback;
}

bool Flags::GetCompiled(bool fallback) const {
  if (Has("compiled")) return GetBool("compiled", fallback);
  const char* env = std::getenv("OODGNN_COMPILED");
  if (env != nullptr && *env != '\0') return std::atoi(env) != 0;
  return fallback;
}

bool Flags::GetCompiledTrain(bool fallback) const {
  if (Has("compiled-train")) return GetBool("compiled-train", fallback);
  const char* env = std::getenv("OODGNN_COMPILED_TRAIN");
  if (env != nullptr && *env != '\0') return std::atoi(env) != 0;
  return fallback;
}

int Flags::GetTrainBucketNodes(int fallback) const {
  if (Has("train-bucket-nodes")) return GetInt("train-bucket-nodes", fallback);
  const char* env = std::getenv("OODGNN_TRAIN_BUCKET_NODES");
  if (env != nullptr && *env != '\0') return std::atoi(env);
  return fallback;
}

int Flags::GetTrainBucketEdges(int fallback) const {
  if (Has("train-bucket-edges")) return GetInt("train-bucket-edges", fallback);
  const char* env = std::getenv("OODGNN_TRAIN_BUCKET_EDGES");
  if (env != nullptr && *env != '\0') return std::atoi(env);
  return fallback;
}

bool Flags::GetQuantize(bool fallback) const {
  if (Has("quantize")) return GetBool("quantize", fallback);
  const char* env = std::getenv("OODGNN_QUANTIZE");
  if (env != nullptr && *env != '\0') return std::atoi(env) != 0;
  return fallback;
}

std::string Flags::GetMetricsOut(const std::string& fallback) const {
  if (Has("metrics-out")) return GetString("metrics-out", fallback);
  const char* env = std::getenv("OODGNN_METRICS_OUT");
  if (env != nullptr && *env != '\0') return env;
  return fallback;
}

int Flags::GetMetricsIntervalMs(int fallback) const {
  if (Has("metrics-interval-ms")) {
    return GetInt("metrics-interval-ms", fallback);
  }
  const char* env = std::getenv("OODGNN_METRICS_INTERVAL_MS");
  if (env != nullptr && *env != '\0') return std::atoi(env);
  return fallback;
}

int Flags::GetMaxInflight(int fallback) const {
  return GetInt("max-inflight", fallback);
}

std::int64_t Flags::GetDeadlineUs(std::int64_t fallback) const {
  auto it = values_.find("deadline-us");
  return it == values_.end()
             ? fallback
             : static_cast<std::int64_t>(std::atoll(it->second.c_str()));
}

bool Flags::GetShedOnSlo(bool fallback) const {
  return GetBool("shed-on-slo", fallback);
}

std::vector<TenantQuotaFlag> Flags::GetTenantQuotas() const {
  std::vector<TenantQuotaFlag> quotas;
  const std::string spec = GetString("tenant-quota", "");
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t c1 = entry.find(':');
    OODGNN_CHECK(c1 != std::string::npos && c1 > 0)
        << "malformed --tenant-quota entry '" << entry
        << "' (want name:tokens_per_sec[:burst])";
    TenantQuotaFlag quota;
    quota.tenant = entry.substr(0, c1);
    const size_t c2 = entry.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      quota.tokens_per_sec = std::atof(entry.substr(c1 + 1).c_str());
    } else {
      quota.tokens_per_sec =
          std::atof(entry.substr(c1 + 1, c2 - c1 - 1).c_str());
      quota.burst = std::atof(entry.substr(c2 + 1).c_str());
    }
    OODGNN_CHECK(quota.tokens_per_sec > 0)
        << "--tenant-quota rate must be positive in '" << entry << "'";
    if (quota.burst < 1.0) quota.burst = 1.0;
    quotas.push_back(quota);
  }
  return quotas;
}

}  // namespace oodgnn
