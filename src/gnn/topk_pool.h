#ifndef OODGNN_GNN_TOPK_POOL_H_
#define OODGNN_GNN_TOPK_POOL_H_

#include <vector>

#include "src/graph/batch.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Result of a pooling layer: gated node embeddings plus the induced
/// coarsened topology.
struct PoolResult {
  Variable h;
  GraphBatch topology;
  /// Global node ids (w.r.t. the input batch) that survived.
  std::vector<int> kept;
};

/// Top-K pooling (Gao & Ji, "Graph U-Nets", ICML 2019): projects node
/// embeddings onto a learnable direction p, keeps the ceil(ratio·n)
/// best-scoring nodes per graph, and gates the survivors by
/// tanh(score).
class TopKPool : public Module {
 public:
  TopKPool(int dim, float ratio, Rng* rng);

  PoolResult Forward(const Variable& h, const GraphBatch& batch) const;

  float ratio() const { return ratio_; }

 private:
  float ratio_;
  Variable projection_;  // [dim, 1]
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_TOPK_POOL_H_
