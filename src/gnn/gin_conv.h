#ifndef OODGNN_GNN_GIN_CONV_H_
#define OODGNN_GNN_GIN_CONV_H_

#include <memory>

#include "src/graph/batch.h"
#include "src/nn/mlp.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Graph Isomorphism Network convolution (Xu et al., ICLR 2019):
///   h'_v = MLP((1+ε)·h_v + Σ_{u∈N(v)} h_u)
/// with a learnable ε and a 2-layer MLP with batch norm.
class GinConv : public Module {
 public:
  GinConv(int in_dim, int out_dim, Rng* rng);

  /// h: [num_nodes, in_dim] -> [num_nodes, out_dim].
  Variable Forward(const Variable& h, const GraphBatch& batch, bool training);

  int out_dim() const { return mlp_->out_features(); }

 private:
  Variable eps_;  // 1×1 learnable ε, zero-initialized.
  std::unique_ptr<Mlp> mlp_;
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_GIN_CONV_H_
