#ifndef OODGNN_GNN_SAGE_CONV_H_
#define OODGNN_GNN_SAGE_CONV_H_

#include <memory>

#include "src/graph/batch.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// GraphSAGE layer (Hamilton et al., NeurIPS 2017), mean-aggregator
/// variant:
///   h'_v = W_self·h_v + W_neigh·mean_{u∈N(v)} h_u.
/// Extension beyond the paper's baseline table.
class SageConv : public Module {
 public:
  SageConv(int in_dim, int out_dim, Rng* rng);

  /// h: [num_nodes, in_dim] -> [num_nodes, out_dim].
  Variable Forward(const Variable& h, const GraphBatch& batch) const;

  int out_dim() const { return self_->out_features(); }

 private:
  std::unique_ptr<Linear> self_;
  std::unique_ptr<Linear> neighbor_;
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_SAGE_CONV_H_
