#ifndef OODGNN_GNN_READOUT_H_
#define OODGNN_GNN_READOUT_H_

#include <vector>

#include "src/graph/batch.h"
#include "src/tensor/variable.h"

namespace oodgnn {

/// How node embeddings are summarized into a graph embedding.
enum class ReadoutKind { kSum, kMean, kMax };

/// Pools node embeddings h [num_nodes, d] into graph embeddings
/// [num_graphs, d] according to `node_graph` assignments.
Variable Readout(const Variable& h, const std::vector<int>& node_graph,
                 int num_graphs, ReadoutKind kind);

/// Batch overload: pools through the batch's cached node plan when
/// present, falling back to the index-vector path otherwise.
Variable Readout(const Variable& h, const GraphBatch& batch,
                 ReadoutKind kind);

}  // namespace oodgnn

#endif  // OODGNN_GNN_READOUT_H_
