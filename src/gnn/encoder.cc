#include "src/gnn/encoder.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {

MessagePassingEncoder::MessagePassingEncoder(ConvKind kind,
                                             const EncoderConfig& config,
                                             Rng* rng)
    : kind_(kind), config_(config) {
  OODGNN_CHECK_GT(config.feature_dim, 0);
  OODGNN_CHECK_GT(config.num_layers, 0);
  embed_ = std::make_unique<Linear>(config.feature_dim, config.hidden_dim,
                                    rng);
  RegisterModule(embed_.get());
  for (int l = 0; l < config.num_layers; ++l) {
    switch (kind) {
      case ConvKind::kGin:
        gin_layers_.push_back(std::make_unique<GinConv>(
            config.hidden_dim, config.hidden_dim, rng));
        RegisterModule(gin_layers_.back().get());
        break;
      case ConvKind::kGcn:
        gcn_layers_.push_back(std::make_unique<GcnConv>(
            config.hidden_dim, config.hidden_dim, rng));
        RegisterModule(gcn_layers_.back().get());
        break;
      case ConvKind::kPna:
        pna_layers_.push_back(std::make_unique<PnaConv>(
            config.hidden_dim, config.hidden_dim, config.pna_delta, rng));
        RegisterModule(pna_layers_.back().get());
        break;
      case ConvKind::kGat:
        gat_layers_.push_back(std::make_unique<GatConv>(
            config.hidden_dim, config.hidden_dim, config.num_heads, rng));
        RegisterModule(gat_layers_.back().get());
        break;
      case ConvKind::kSage:
        sage_layers_.push_back(std::make_unique<SageConv>(
            config.hidden_dim, config.hidden_dim, rng));
        RegisterModule(sage_layers_.back().get());
        break;
    }
    norms_.push_back(std::make_unique<BatchNorm1d>(config.hidden_dim));
    RegisterModule(norms_.back().get());
  }
  if (config.virtual_node) {
    virtual_node_ = std::make_unique<VirtualNode>(config.hidden_dim, rng);
    RegisterModule(virtual_node_.get());
  }
}

Variable MessagePassingEncoder::ApplyConv(size_t layer, const Variable& h,
                                          const GraphBatch& batch,
                                          bool training) {
  switch (kind_) {
    case ConvKind::kGin:
      return gin_layers_[layer]->Forward(h, batch, training);
    case ConvKind::kGcn:
      return gcn_layers_[layer]->Forward(h, batch);
    case ConvKind::kPna:
      return pna_layers_[layer]->Forward(h, batch);
    case ConvKind::kGat:
      return gat_layers_[layer]->Forward(h, batch);
    case ConvKind::kSage:
      return sage_layers_[layer]->Forward(h, batch);
  }
  OODGNN_CHECK(false);
  return Variable();
}

Variable MessagePassingEncoder::Encode(const GraphBatch& batch, bool training,
                                       Rng* rng) {
  Variable h = embed_->Forward(Variable::Constant(batch.features));
  Variable vn;
  if (virtual_node_) vn = virtual_node_->InitialState(batch.num_graphs);

  for (size_t l = 0; l < norms_.size(); ++l) {
    if (virtual_node_) h = virtual_node_->Distribute(h, vn, batch);
    h = ApplyConv(l, h, batch, training);
    h = norms_[l]->Forward(h, training);
    const bool last = l + 1 == norms_.size();
    if (!last) h = Relu(h);
    h = Dropout(h, config_.dropout, rng, training);
    if (virtual_node_ && !last) {
      vn = virtual_node_->Update(vn, h, batch, training);
    }
  }
  return Readout(h, batch, config_.readout);
}

HierarchicalPoolEncoder::HierarchicalPoolEncoder(PoolKind kind,
                                                 const EncoderConfig& config,
                                                 Rng* rng)
    : config_(config) {
  OODGNN_CHECK_GT(config.feature_dim, 0);
  OODGNN_CHECK_GT(config.num_layers, 0);
  embed_ = std::make_unique<Linear>(config.feature_dim, config.hidden_dim,
                                    rng);
  RegisterModule(embed_.get());
  for (int l = 0; l < config.num_layers; ++l) {
    convs_.push_back(std::make_unique<GcnConv>(config.hidden_dim,
                                               config.hidden_dim, rng));
    RegisterModule(convs_.back().get());
    if (kind == PoolKind::kTopK) {
      topk_pools_.push_back(std::make_unique<TopKPool>(
          config.hidden_dim, config.pool_ratio, rng));
      RegisterModule(topk_pools_.back().get());
    } else {
      sag_pools_.push_back(std::make_unique<SagPool>(
          config.hidden_dim, config.pool_ratio, rng));
      RegisterModule(sag_pools_.back().get());
    }
  }
}

Variable HierarchicalPoolEncoder::Encode(const GraphBatch& batch,
                                         bool training, Rng* rng) {
  Variable h = embed_->Forward(Variable::Constant(batch.features));
  // Work on a value copy of the topology; pooling coarsens it per block.
  GraphBatch topology = batch;
  Variable summary;
  for (size_t l = 0; l < convs_.size(); ++l) {
    h = Relu(convs_[l]->Forward(h, topology));
    h = Dropout(h, config_.dropout, rng, training);
    PoolResult pooled = topk_pools_.empty()
                            ? sag_pools_[l]->Forward(h, topology)
                            : topk_pools_[l]->Forward(h, topology);
    h = pooled.h;
    topology = std::move(pooled.topology);
    Variable block = ConcatCols({Readout(h, topology, ReadoutKind::kMean),
                                 Readout(h, topology, ReadoutKind::kMax)});
    summary = summary.defined() ? Add(summary, block) : block;
  }
  return summary;
}

FactorGcnEncoder::FactorGcnEncoder(const EncoderConfig& config, Rng* rng)
    : config_(config) {
  OODGNN_CHECK_GT(config.feature_dim, 0);
  OODGNN_CHECK_GT(config.num_layers, 0);
  embed_ = std::make_unique<Linear>(config.feature_dim, config.hidden_dim,
                                    rng);
  RegisterModule(embed_.get());
  for (int l = 0; l < config.num_layers; ++l) {
    convs_.push_back(std::make_unique<FactorGcnConv>(
        config.hidden_dim, config.hidden_dim, config.num_factors, rng));
    RegisterModule(convs_.back().get());
  }
}

Variable FactorGcnEncoder::Encode(const GraphBatch& batch, bool training,
                                  Rng* rng) {
  Variable h = embed_->Forward(Variable::Constant(batch.features));
  for (auto& conv : convs_) {
    h = conv->Forward(h, batch);
    h = Dropout(h, config_.dropout, rng, training);
  }
  return Readout(h, batch, config_.readout);
}

}  // namespace oodgnn
