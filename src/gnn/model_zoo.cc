#include "src/gnn/model_zoo.h"

#include "src/util/check.h"

namespace oodgnn {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kGcn:
      return "GCN";
    case Method::kGcnVirtual:
      return "GCN-virtual";
    case Method::kGin:
      return "GIN";
    case Method::kGinVirtual:
      return "GIN-virtual";
    case Method::kFactorGcn:
      return "FactorGCN";
    case Method::kPna:
      return "PNA";
    case Method::kTopKPool:
      return "TopKPool";
    case Method::kSagPool:
      return "SAGPool";
    case Method::kOodGnn:
      return "OOD-GNN";
    case Method::kGat:
      return "GAT";
    case Method::kGraphSage:
      return "GraphSAGE";
  }
  return "?";
}

std::vector<Method> BaselineMethods() {
  return {Method::kGcn,     Method::kGcnVirtual, Method::kGin,
          Method::kGinVirtual, Method::kFactorGcn,  Method::kPna,
          Method::kTopKPool,   Method::kSagPool};
}

std::vector<Method> AllMethods() {
  std::vector<Method> methods = BaselineMethods();
  methods.push_back(Method::kOodGnn);
  return methods;
}

std::vector<Method> ExtensionMethods() {
  return {Method::kGat, Method::kGraphSage};
}

GraphPredictionModel::GraphPredictionModel(Method method,
                                           const EncoderConfig& config,
                                           int output_dim, Rng* rng)
    : method_(method), output_dim_(output_dim) {
  OODGNN_CHECK_GT(output_dim, 0);
  EncoderConfig cfg = config;
  switch (method) {
    case Method::kGcn:
      cfg.virtual_node = false;
      encoder_ = std::make_unique<MessagePassingEncoder>(ConvKind::kGcn, cfg,
                                                         rng);
      break;
    case Method::kGcnVirtual:
      cfg.virtual_node = true;
      encoder_ = std::make_unique<MessagePassingEncoder>(ConvKind::kGcn, cfg,
                                                         rng);
      break;
    case Method::kGin:
    case Method::kOodGnn:  // The paper uses GIN as the OOD-GNN backbone.
      cfg.virtual_node = false;
      encoder_ = std::make_unique<MessagePassingEncoder>(ConvKind::kGin, cfg,
                                                         rng);
      break;
    case Method::kGinVirtual:
      cfg.virtual_node = true;
      encoder_ = std::make_unique<MessagePassingEncoder>(ConvKind::kGin, cfg,
                                                         rng);
      break;
    case Method::kFactorGcn:
      encoder_ = std::make_unique<FactorGcnEncoder>(cfg, rng);
      break;
    case Method::kPna:
      cfg.virtual_node = false;
      encoder_ = std::make_unique<MessagePassingEncoder>(ConvKind::kPna, cfg,
                                                         rng);
      break;
    case Method::kTopKPool:
      encoder_ = std::make_unique<HierarchicalPoolEncoder>(PoolKind::kTopK,
                                                           cfg, rng);
      break;
    case Method::kSagPool:
      encoder_ = std::make_unique<HierarchicalPoolEncoder>(PoolKind::kSag,
                                                           cfg, rng);
      break;
    case Method::kGat:
      cfg.virtual_node = false;
      encoder_ = std::make_unique<MessagePassingEncoder>(ConvKind::kGat, cfg,
                                                         rng);
      break;
    case Method::kGraphSage:
      cfg.virtual_node = false;
      encoder_ = std::make_unique<MessagePassingEncoder>(ConvKind::kSage,
                                                         cfg, rng);
      break;
  }
  RegisterModule(encoder_.get());
  const int rep_dim = encoder_->output_dim();
  head_ = std::make_unique<Mlp>(
      std::vector<int>{rep_dim, rep_dim / 2 > 0 ? rep_dim / 2 : rep_dim,
                       output_dim},
      rng);
  RegisterModule(head_.get());
}

Variable GraphPredictionModel::Encode(const GraphBatch& batch, bool training,
                                      Rng* rng) {
  return encoder_->Encode(batch, training, rng);
}

Variable GraphPredictionModel::Classify(const Variable& z, bool training) {
  return head_->Forward(z, training);
}

Variable GraphPredictionModel::Predict(const GraphBatch& batch, bool training,
                                       Rng* rng) {
  return Classify(Encode(batch, training, rng), training);
}

}  // namespace oodgnn
