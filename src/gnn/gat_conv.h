#ifndef OODGNN_GNN_GAT_CONV_H_
#define OODGNN_GNN_GAT_CONV_H_

#include <memory>
#include <vector>

#include "src/graph/batch.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Graph Attention layer (Veličković et al., ICLR 2018), multi-head:
/// per head h, edge u→v gets attention
///   α_uv = softmax_v( LeakyReLU(aₗ·(W h_u) + aᵣ·(W h_v)) )
/// normalized over v's incoming edges (plus a self loop), and
///   h'_v = Σ_u α_uv (W h_u),
/// with the heads' outputs concatenated. Extension beyond the paper's
/// baseline table (the paper cites GAT in related work).
class GatConv : public Module {
 public:
  /// out_dim must be divisible by num_heads.
  GatConv(int in_dim, int out_dim, int num_heads, Rng* rng);

  /// h: [num_nodes, in_dim] -> [num_nodes, out_dim].
  Variable Forward(const Variable& h, const GraphBatch& batch) const;

  int num_heads() const { return static_cast<int>(value_.size()); }

 private:
  std::vector<std::unique_ptr<Linear>> value_;  // in -> out/heads
  std::vector<Variable> attn_src_;              // [out/heads, 1]
  std::vector<Variable> attn_dst_;              // [out/heads, 1]
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_GAT_CONV_H_
