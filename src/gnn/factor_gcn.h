#ifndef OODGNN_GNN_FACTOR_GCN_H_
#define OODGNN_GNN_FACTOR_GCN_H_

#include <memory>
#include <vector>

#include "src/graph/batch.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Factorizable Graph Convolution (Yang et al., NeurIPS 2020),
/// single-layer form: the input graph is softly decomposed into
/// `num_factors` latent factor graphs by per-edge sigmoid attention
/// computed from the incident node embeddings; each factor propagates
/// its own value transform and the per-factor outputs are concatenated.
class FactorGcnConv : public Module {
 public:
  /// out_dim must be divisible by num_factors.
  FactorGcnConv(int in_dim, int out_dim, int num_factors, Rng* rng);

  /// h: [num_nodes, in_dim] -> [num_nodes, out_dim].
  Variable Forward(const Variable& h, const GraphBatch& batch) const;

  int num_factors() const { return static_cast<int>(values_.size()); }

  /// Per-edge factor attention from the most recent Forward call
  /// (values only; exposed for the disentanglement diagnostics).
  const std::vector<Tensor>& last_attention() const {
    return last_attention_;
  }

 private:
  std::vector<std::unique_ptr<Linear>> attention_;  // [2·in] -> 1 each
  std::vector<std::unique_ptr<Linear>> values_;     // in -> out/F each
  mutable std::vector<Tensor> last_attention_;
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_FACTOR_GCN_H_
