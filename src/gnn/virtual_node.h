#ifndef OODGNN_GNN_VIRTUAL_NODE_H_
#define OODGNN_GNN_VIRTUAL_NODE_H_

#include <memory>

#include "src/graph/batch.h"
#include "src/nn/mlp.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Virtual-node augmentation (Hu et al., OGB 2020): a per-graph latent
/// node connected to every real node. Between message-passing layers the
/// virtual embedding is added to every node of its graph and then
/// updated from the graph's node sum through an MLP.
class VirtualNode : public Module {
 public:
  VirtualNode(int dim, Rng* rng);

  /// Initial per-graph virtual embedding (zeros), [num_graphs, dim].
  Variable InitialState(int num_graphs) const;

  /// Returns h with each node augmented by its graph's virtual
  /// embedding: h_v + vn[graph(v)].
  Variable Distribute(const Variable& h, const Variable& vn,
                      const GraphBatch& batch) const;

  /// New virtual state: MLP(vn + Σ_{v∈g} h_v).
  Variable Update(const Variable& vn, const Variable& h,
                  const GraphBatch& batch, bool training);

 private:
  int dim_;
  std::unique_ptr<Mlp> update_mlp_;
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_VIRTUAL_NODE_H_
