#include "src/gnn/readout.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

Variable Readout(const Variable& h, const std::vector<int>& node_graph,
                 int num_graphs, ReadoutKind kind) {
  OODGNN_CHECK_EQ(h.rows(), static_cast<int>(node_graph.size()));
  switch (kind) {
    case ReadoutKind::kSum:
      return SegmentSum(h, node_graph, num_graphs);
    case ReadoutKind::kMean:
      return SegmentMean(h, node_graph, num_graphs);
    case ReadoutKind::kMax:
      return SegmentMax(h, node_graph, num_graphs);
  }
  OODGNN_CHECK(false) << "unknown readout";
  return Variable();
}

}  // namespace oodgnn
