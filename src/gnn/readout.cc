#include "src/gnn/readout.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

Variable Readout(const Variable& h, const std::vector<int>& node_graph,
                 int num_graphs, ReadoutKind kind) {
  OODGNN_CHECK_EQ(h.rows(), static_cast<int>(node_graph.size()));
  switch (kind) {
    case ReadoutKind::kSum:
      return SegmentSum(h, node_graph, num_graphs);
    case ReadoutKind::kMean:
      return SegmentMean(h, node_graph, num_graphs);
    case ReadoutKind::kMax:
      return SegmentMax(h, node_graph, num_graphs);
  }
  OODGNN_CHECK(false) << "unknown readout";
  return Variable();
}

Variable Readout(const Variable& h, const GraphBatch& batch,
                 ReadoutKind kind) {
  if (!batch.has_plans()) {
    return Readout(h, batch.node_graph, batch.num_graphs, kind);
  }
  OODGNN_CHECK_EQ(h.rows(), batch.node_plan->num_items());
  switch (kind) {
    case ReadoutKind::kSum:
      return SegmentSum(h, batch.node_plan);
    case ReadoutKind::kMean:
      return SegmentMean(h, batch.node_plan);
    case ReadoutKind::kMax:
      return SegmentMax(h, batch.node_plan);
  }
  OODGNN_CHECK(false) << "unknown readout";
  return Variable();
}

}  // namespace oodgnn
