#ifndef OODGNN_GNN_MODEL_ZOO_H_
#define OODGNN_GNN_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/gnn/encoder.h"
#include "src/graph/dataset.h"
#include "src/nn/mlp.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Every method compared in the paper's Tables 2–4. kOodGnn shares the
/// GIN encoder but is trained with the decorrelation/reweighting
/// procedure (src/core).
enum class Method {
  kGcn,
  kGcnVirtual,
  kGin,
  kGinVirtual,
  kFactorGcn,
  kPna,
  kTopKPool,
  kSagPool,
  kOodGnn,
  // Extension methods beyond the paper's comparison table (cited in its
  // related-work section); usable everywhere a Method is accepted.
  kGat,
  kGraphSage,
};

/// Display name matching the paper's tables ("GCN-virtual", ...).
const char* MethodName(Method method);

/// The eight baseline rows of the paper's tables (everything except
/// OOD-GNN), in table order.
std::vector<Method> BaselineMethods();

/// All nine methods, in table order (baselines then OOD-GNN).
std::vector<Method> AllMethods();

/// Extension methods not part of the paper's tables (GAT, GraphSAGE).
std::vector<Method> ExtensionMethods();

/// Encoder + classifier-head pair: the (Φ, R) of the paper. The head is
/// the paper's two-layer MLP.
class GraphPredictionModel : public Module {
 public:
  /// Builds the encoder prescribed by `method` with the given config and
  /// a classifier head with `output_dim` logits/outputs.
  GraphPredictionModel(Method method, const EncoderConfig& config,
                       int output_dim, Rng* rng);

  /// Graph representations Z: [num_graphs, representation_dim].
  Variable Encode(const GraphBatch& batch, bool training, Rng* rng);

  /// Classifier head on representations: [num_graphs, output_dim].
  Variable Classify(const Variable& z, bool training);

  /// Encode + Classify.
  Variable Predict(const GraphBatch& batch, bool training, Rng* rng);

  int representation_dim() const { return encoder_->output_dim(); }
  int output_dim() const { return output_dim_; }
  Method method() const { return method_; }

 private:
  Method method_;
  int output_dim_;
  std::unique_ptr<GraphEncoder> encoder_;
  std::unique_ptr<Mlp> head_;
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_MODEL_ZOO_H_
