#include "src/gnn/sag_pool.h"

#include <memory>

#include "src/gnn/pool_common.h"
#include "src/tensor/ops.h"
#include "src/tensor/segment_plan.h"
#include "src/util/check.h"

namespace oodgnn {

SagPool::SagPool(int dim, float ratio, Rng* rng)
    : ratio_(ratio),
      score_conv_(std::make_unique<GcnConv>(dim, 1, rng)) {
  OODGNN_CHECK(ratio > 0.f && ratio <= 1.f);
  RegisterModule(score_conv_.get());
}

PoolResult SagPool::Forward(const Variable& h,
                            const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  Variable scores = score_conv_->Forward(h, batch);

  PoolResult result;
  result.kept = SelectTopKNodes(scores.value(), batch, ratio_);
  result.topology = InduceSubgraph(batch, result.kept);
  // One plan over the kept indices serves both gathers (their backward
  // scatters parallelize over the surviving nodes).
  SegmentPlanPtr kept_plan = std::make_shared<const SegmentPlan>(
      SegmentPlan::Build(result.kept, batch.num_nodes));
  Variable gate = TanhOp(RowGather(scores, kept_plan));
  result.h = MulColVec(RowGather(h, kept_plan), gate);
  return result;
}

}  // namespace oodgnn
