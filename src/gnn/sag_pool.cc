#include "src/gnn/sag_pool.h"

#include "src/gnn/pool_common.h"
#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

SagPool::SagPool(int dim, float ratio, Rng* rng)
    : ratio_(ratio),
      score_conv_(std::make_unique<GcnConv>(dim, 1, rng)) {
  OODGNN_CHECK(ratio > 0.f && ratio <= 1.f);
  RegisterModule(score_conv_.get());
}

PoolResult SagPool::Forward(const Variable& h,
                            const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  Variable scores = score_conv_->Forward(h, batch);

  PoolResult result;
  result.kept = SelectTopKNodes(scores.value(), batch, ratio_);
  result.topology = InduceSubgraph(batch, result.kept);
  Variable gate = TanhOp(RowGather(scores, result.kept));
  result.h = MulColVec(RowGather(h, result.kept), gate);
  return result;
}

}  // namespace oodgnn
