#include "src/gnn/gin_conv.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

GinConv::GinConv(int in_dim, int out_dim, Rng* rng) {
  eps_ = RegisterParameter(Tensor(1, 1));
  mlp_ = std::make_unique<Mlp>(std::vector<int>{in_dim, out_dim, out_dim},
                               rng, /*batch_norm=*/true);
  RegisterModule(mlp_.get());
}

Variable GinConv::Forward(const Variable& h, const GraphBatch& batch,
                          bool training) {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  Variable aggregated =
      batch.edge_src.empty()
          ? Variable::Constant(Tensor(batch.num_nodes, h.cols()))
      : batch.has_plans()
          ? GatherScatter(h, batch.plan)
          : ScatterAddRows(RowGather(h, batch.edge_src), batch.edge_dst,
                           batch.num_nodes);
  Variable self_term = MulByScalarVar(h, AddScalar(eps_, 1.f));
  return mlp_->Forward(Add(self_term, aggregated), training);
}

}  // namespace oodgnn
