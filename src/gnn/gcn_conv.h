#ifndef OODGNN_GNN_GCN_CONV_H_
#define OODGNN_GNN_GCN_CONV_H_

#include <memory>

#include "src/graph/batch.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Graph Convolutional Network layer (Kipf & Welling, ICLR 2017) with
/// implicit self loops and symmetric normalization:
///   h'_v = Σ_{u∈N(v)∪{v}} (h_u·W) / sqrt((d_u+1)(d_v+1)) + b.
class GcnConv : public Module {
 public:
  GcnConv(int in_dim, int out_dim, Rng* rng);

  /// h: [num_nodes, in_dim] -> [num_nodes, out_dim].
  Variable Forward(const Variable& h, const GraphBatch& batch) const;

  int out_dim() const { return linear_->out_features(); }

 private:
  std::unique_ptr<Linear> linear_;
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_GCN_CONV_H_
