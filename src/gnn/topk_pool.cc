#include "src/gnn/topk_pool.h"

#include <memory>

#include "src/nn/init.h"
#include "src/tensor/ops.h"
#include "src/tensor/segment_plan.h"
#include "src/util/check.h"

#include "src/gnn/pool_common.h"

namespace oodgnn {

TopKPool::TopKPool(int dim, float ratio, Rng* rng) : ratio_(ratio) {
  OODGNN_CHECK(ratio > 0.f && ratio <= 1.f);
  projection_ = RegisterParameter(GlorotUniform(dim, 1, rng));
}

PoolResult TopKPool::Forward(const Variable& h,
                             const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  // score = h·p / ||p||  (differentiable in both h and p).
  Variable norm = SqrtOp(AddScalar(Sum(Square(projection_)), 1e-12f));
  Variable scores = MulByScalarVar(MatMul(h, projection_), Reciprocal(norm));

  PoolResult result;
  result.kept = SelectTopKNodes(scores.value(), batch, ratio_);
  result.topology = InduceSubgraph(batch, result.kept);
  // One plan over the kept indices serves both gathers (their backward
  // scatters parallelize over the surviving nodes).
  SegmentPlanPtr kept_plan = std::make_shared<const SegmentPlan>(
      SegmentPlan::Build(result.kept, batch.num_nodes));
  Variable gate = TanhOp(RowGather(scores, kept_plan));
  result.h = MulColVec(RowGather(h, kept_plan), gate);
  return result;
}

}  // namespace oodgnn
