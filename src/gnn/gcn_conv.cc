#include "src/gnn/gcn_conv.h"

#include <cmath>

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

GcnConv::GcnConv(int in_dim, int out_dim, Rng* rng)
    : linear_(std::make_unique<Linear>(in_dim, out_dim, rng)) {
  RegisterModule(linear_.get());
}

Variable GcnConv::Forward(const Variable& h, const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  Variable transformed = linear_->Forward(h);

  if (batch.has_plans()) {
    // Normalization coefficients were precomputed in FinalizePlans();
    // the edge term fuses gather, per-edge scaling, and the planned
    // segment scatter.
    Variable out = MulColVec(transformed,
                             Variable::Constant(batch.gcn_self_coeff));
    if (!batch.edge_src.empty()) {
      out = Add(out, GatherScatterWeighted(
                         transformed,
                         Variable::Constant(batch.gcn_edge_coeff),
                         batch.plan));
    }
    return out;
  }

  // Unplanned fallback: self-loop-augmented inverse sqrt degrees.
  std::vector<float> inv_sqrt_deg(static_cast<size_t>(batch.num_nodes));
  for (int v = 0; v < batch.num_nodes; ++v) {
    inv_sqrt_deg[static_cast<size_t>(v)] =
        1.f / std::sqrt(static_cast<float>(
                  batch.in_degree[static_cast<size_t>(v)] + 1));
  }

  // Self contribution: (hW)_v / (d_v+1).
  std::vector<float> self_coeff(static_cast<size_t>(batch.num_nodes));
  for (int v = 0; v < batch.num_nodes; ++v) {
    const float s = inv_sqrt_deg[static_cast<size_t>(v)];
    self_coeff[static_cast<size_t>(v)] = s * s;
  }
  Variable out = MulColVec(
      transformed, Variable::Constant(Tensor::ColVector(self_coeff)));

  if (!batch.edge_src.empty()) {
    std::vector<float> edge_coeff(batch.edge_src.size());
    for (size_t e = 0; e < batch.edge_src.size(); ++e) {
      edge_coeff[e] =
          inv_sqrt_deg[static_cast<size_t>(batch.edge_src[e])] *
          inv_sqrt_deg[static_cast<size_t>(batch.edge_dst[e])];
    }
    Variable messages = RowGather(transformed, batch.edge_src);
    messages = MulColVec(messages,
                         Variable::Constant(Tensor::ColVector(edge_coeff)));
    out = Add(out, ScatterAddRows(messages, batch.edge_dst, batch.num_nodes));
  }
  return out;
}

}  // namespace oodgnn
