#include "src/gnn/pool_common.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace oodgnn {

std::vector<int> SelectTopKNodes(const Tensor& scores,
                                 const GraphBatch& batch, float ratio) {
  OODGNN_CHECK_EQ(scores.rows(), batch.num_nodes);
  OODGNN_CHECK_EQ(scores.cols(), 1);
  OODGNN_CHECK(ratio > 0.f && ratio <= 1.f);

  // Bucket nodes per graph.
  std::vector<std::vector<int>> nodes_of(
      static_cast<size_t>(batch.num_graphs));
  for (int v = 0; v < batch.num_nodes; ++v) {
    nodes_of[static_cast<size_t>(batch.node_graph[static_cast<size_t>(v)])]
        .push_back(v);
  }

  std::vector<int> kept;
  kept.reserve(static_cast<size_t>(batch.num_nodes));
  for (auto& nodes : nodes_of) {
    if (nodes.empty()) continue;
    const int k = std::max<int>(
        1, static_cast<int>(
               std::ceil(ratio * static_cast<float>(nodes.size()))));
    std::partial_sort(nodes.begin(),
                      nodes.begin() + std::min<size_t>(nodes.size(),
                                                       static_cast<size_t>(k)),
                      nodes.end(), [&](int a, int b) {
                        return scores.at(a, 0) > scores.at(b, 0);
                      });
    nodes.resize(std::min<size_t>(nodes.size(), static_cast<size_t>(k)));
    kept.insert(kept.end(), nodes.begin(), nodes.end());
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

GraphBatch InduceSubgraph(const GraphBatch& batch,
                          const std::vector<int>& kept) {
  GraphBatch out;
  out.num_graphs = batch.num_graphs;
  out.num_nodes = static_cast<int>(kept.size());

  std::vector<int> new_id(static_cast<size_t>(batch.num_nodes), -1);
  for (size_t i = 0; i < kept.size(); ++i) {
    OODGNN_DCHECK(kept[i] >= 0 && kept[i] < batch.num_nodes);
    new_id[static_cast<size_t>(kept[i])] = static_cast<int>(i);
  }

  out.node_graph.resize(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    out.node_graph[i] =
        batch.node_graph[static_cast<size_t>(kept[i])];
  }

  for (size_t e = 0; e < batch.edge_src.size(); ++e) {
    const int u = new_id[static_cast<size_t>(batch.edge_src[e])];
    const int v = new_id[static_cast<size_t>(batch.edge_dst[e])];
    if (u >= 0 && v >= 0) {
      out.edge_src.push_back(u);
      out.edge_dst.push_back(v);
    }
  }

  // Builds the derived batch's own plans (and its in_degree, which is
  // derived from them) — the parent's plans index the pre-pool node set.
  out.FinalizePlans();

  out.class_labels = batch.class_labels;
  out.targets = batch.targets;
  out.target_mask = batch.target_mask;
  return out;
}

}  // namespace oodgnn
