#ifndef OODGNN_GNN_SAG_POOL_H_
#define OODGNN_GNN_SAG_POOL_H_

#include <memory>

#include "src/gnn/gcn_conv.h"
#include "src/gnn/topk_pool.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Self-Attention Graph pooling (Lee et al., ICML 2019): node scores
/// come from a one-output GCN convolution (structure-aware attention)
/// instead of a plain projection; survivors are gated by tanh(score)
/// exactly like TopKPool.
class SagPool : public Module {
 public:
  SagPool(int dim, float ratio, Rng* rng);

  PoolResult Forward(const Variable& h, const GraphBatch& batch) const;

  float ratio() const { return ratio_; }

 private:
  float ratio_;
  std::unique_ptr<GcnConv> score_conv_;
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_SAG_POOL_H_
