#ifndef OODGNN_GNN_PNA_CONV_H_
#define OODGNN_GNN_PNA_CONV_H_

#include <memory>

#include "src/graph/batch.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Principal Neighbourhood Aggregation layer (Corso et al., NeurIPS
/// 2020), single-tower variant: neighbor messages are pre-transformed,
/// reduced with {mean, max, min, sum} aggregators, each aggregate is
/// modulated by the {identity, amplification, attenuation} degree
/// scalers, and the 12 concatenated blocks are post-transformed back to
/// `out_dim` together with the node's own embedding.
class PnaConv : public Module {
 public:
  /// `delta` is the normalizing constant E[log(d+1)] over the training
  /// graphs (computed once per dataset by the caller).
  PnaConv(int in_dim, int out_dim, float delta, Rng* rng);

  /// h: [num_nodes, in_dim] -> [num_nodes, out_dim].
  Variable Forward(const Variable& h, const GraphBatch& batch) const;

  int out_dim() const { return post_->out_features(); }

 private:
  float delta_;
  std::unique_ptr<Linear> pre_;
  std::unique_ptr<Linear> post_;
};

/// Computes the PNA degree normalizer δ = mean(log(deg+1)) over the
/// given graphs.
float ComputePnaDelta(const std::vector<const Graph*>& graphs);

}  // namespace oodgnn

#endif  // OODGNN_GNN_PNA_CONV_H_
