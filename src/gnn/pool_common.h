#ifndef OODGNN_GNN_POOL_COMMON_H_
#define OODGNN_GNN_POOL_COMMON_H_

#include <vector>

#include "src/graph/batch.h"
#include "src/tensor/tensor.h"

namespace oodgnn {

/// Per-graph top-k node selection: for every graph keeps the
/// ceil(ratio·n_g) nodes with the highest scores (at least one per
/// graph). Returns the kept global node ids in ascending order.
/// `scores` must be [num_nodes, 1].
std::vector<int> SelectTopKNodes(const Tensor& scores,
                                 const GraphBatch& batch, float ratio);

/// Builds the topology of the subgraph induced by `kept` (ascending
/// global node ids): edges with both endpoints kept are re-indexed, the
/// node→graph map is carried over, and in-degrees are recomputed. The
/// returned batch has empty `features` (callers carry node embeddings
/// separately as Variables).
GraphBatch InduceSubgraph(const GraphBatch& batch,
                          const std::vector<int>& kept);

}  // namespace oodgnn

#endif  // OODGNN_GNN_POOL_COMMON_H_
