#include "src/gnn/pna_conv.h"

#include <cmath>

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

PnaConv::PnaConv(int in_dim, int out_dim, float delta, Rng* rng)
    : delta_(delta),
      pre_(std::make_unique<Linear>(in_dim, out_dim, rng)),
      // 4 aggregators × 3 scalers of width out_dim, plus the self
      // embedding of width in_dim.
      post_(std::make_unique<Linear>(12 * out_dim + in_dim, out_dim, rng)) {
  OODGNN_CHECK_GT(delta, 0.f);
  RegisterModule(pre_.get());
  RegisterModule(post_.get());
}

Variable PnaConv::Forward(const Variable& h, const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  const int n = batch.num_nodes;
  Variable messages = pre_->Forward(h);

  Variable sum_agg;
  Variable mean_agg;
  Variable max_agg;
  Variable min_agg;
  if (batch.edge_src.empty()) {
    Tensor zeros(n, messages.cols());
    sum_agg = Variable::Constant(zeros);
    mean_agg = Variable::Constant(zeros);
    max_agg = Variable::Constant(zeros);
    min_agg = Variable::Constant(zeros);
  } else {
    // `gathered` feeds three aggregators, so the planned path keeps it
    // materialized (no gather-scatter fusion) and swaps in the planned
    // overloads only.
    Variable gathered = batch.has_plans()
                            ? RowGather(messages, BySrc(batch.plan))
                            : RowGather(messages, batch.edge_src);
    sum_agg = batch.has_plans()
                  ? ScatterAddRows(gathered, ByDst(batch.plan))
                  : ScatterAddRows(gathered, batch.edge_dst, n);
    // Mean: divide by in-degree (zero-degree nodes keep zero rows).
    std::vector<float> inv_deg(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) {
      const int d = batch.in_degree[static_cast<size_t>(v)];
      inv_deg[static_cast<size_t>(v)] =
          d > 0 ? 1.f / static_cast<float>(d) : 0.f;
    }
    mean_agg =
        MulColVec(sum_agg, Variable::Constant(Tensor::ColVector(inv_deg)));
    if (batch.has_plans()) {
      max_agg = SegmentMax(gathered, ByDst(batch.plan));
      min_agg = SegmentMin(gathered, ByDst(batch.plan));
    } else {
      max_agg = SegmentMax(gathered, batch.edge_dst, n);
      min_agg = SegmentMin(gathered, batch.edge_dst, n);
    }
  }

  // Degree scalers (Corso et al. Eq. 5): identity, amplification
  // log(d+1)/δ, attenuation δ/log(d+1).
  std::vector<float> amplify(static_cast<size_t>(n));
  std::vector<float> attenuate(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    const float log_deg = std::log(
        static_cast<float>(batch.in_degree[static_cast<size_t>(v)] + 1));
    amplify[static_cast<size_t>(v)] = log_deg / delta_;
    attenuate[static_cast<size_t>(v)] =
        log_deg > 0.f ? delta_ / log_deg : 0.f;
  }
  Variable amp = Variable::Constant(Tensor::ColVector(amplify));
  Variable att = Variable::Constant(Tensor::ColVector(attenuate));

  std::vector<Variable> blocks;
  blocks.reserve(13);
  for (const Variable& agg : {mean_agg, max_agg, min_agg, sum_agg}) {
    blocks.push_back(agg);
    blocks.push_back(MulColVec(agg, amp));
    blocks.push_back(MulColVec(agg, att));
  }
  blocks.push_back(h);
  return post_->Forward(ConcatCols(blocks));
}

float ComputePnaDelta(const std::vector<const Graph*>& graphs) {
  double total = 0.0;
  int64_t count = 0;
  for (const Graph* g : graphs) {
    for (int d : g->InDegrees()) {
      total += std::log(static_cast<double>(d + 1));
      ++count;
    }
  }
  if (count == 0 || total <= 0.0) return 1.f;
  return static_cast<float>(total / static_cast<double>(count));
}

}  // namespace oodgnn
