#ifndef OODGNN_GNN_ENCODER_H_
#define OODGNN_GNN_ENCODER_H_

#include <memory>
#include <vector>

#include "src/gnn/factor_gcn.h"
#include "src/gnn/gat_conv.h"
#include "src/gnn/gcn_conv.h"
#include "src/gnn/gin_conv.h"
#include "src/gnn/pna_conv.h"
#include "src/gnn/readout.h"
#include "src/gnn/sage_conv.h"
#include "src/gnn/sag_pool.h"
#include "src/gnn/topk_pool.h"
#include "src/gnn/virtual_node.h"
#include "src/graph/batch.h"
#include "src/nn/batchnorm.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Maps a batch of graphs to fixed-width graph representations
/// Z ∈ R^{num_graphs × output_dim} — the Φ of the paper.
class GraphEncoder : public Module {
 public:
  ~GraphEncoder() override = default;

  virtual Variable Encode(const GraphBatch& batch, bool training,
                          Rng* rng) = 0;
  virtual int output_dim() const = 0;
};

/// Shared hyper-parameters for all encoders.
struct EncoderConfig {
  int feature_dim = 0;    ///< Input node-feature width (required).
  int hidden_dim = 64;    ///< Representation width d.
  int num_layers = 3;     ///< Message-passing depth.
  float dropout = 0.5f;   ///< Dropout after every layer.
  ReadoutKind readout = ReadoutKind::kMean;
  bool virtual_node = false;
  float pool_ratio = 0.5f;  ///< Pooling encoders: nodes kept per stage.
  int num_factors = 4;      ///< FactorGCN: latent factor graphs.
  float pna_delta = 1.f;    ///< PNA: E[log(deg+1)] over training data.
  int num_heads = 4;        ///< GAT: attention heads.
};

/// Which convolution a MessagePassingEncoder stacks.
enum class ConvKind { kGin, kGcn, kPna, kGat, kSage };

/// Flat stack of message-passing layers with batch norm, ReLU and
/// dropout between layers, optional virtual node, and a global readout.
/// Covers GIN, GCN, PNA and their -virtual variants.
class MessagePassingEncoder : public GraphEncoder {
 public:
  MessagePassingEncoder(ConvKind kind, const EncoderConfig& config, Rng* rng);

  Variable Encode(const GraphBatch& batch, bool training, Rng* rng) override;
  int output_dim() const override { return config_.hidden_dim; }

 private:
  Variable ApplyConv(size_t layer, const Variable& h, const GraphBatch& batch,
                     bool training);

  ConvKind kind_;
  EncoderConfig config_;
  std::unique_ptr<Linear> embed_;
  std::vector<std::unique_ptr<GinConv>> gin_layers_;
  std::vector<std::unique_ptr<GcnConv>> gcn_layers_;
  std::vector<std::unique_ptr<PnaConv>> pna_layers_;
  std::vector<std::unique_ptr<GatConv>> gat_layers_;
  std::vector<std::unique_ptr<SageConv>> sage_layers_;
  std::vector<std::unique_ptr<BatchNorm1d>> norms_;
  std::unique_ptr<VirtualNode> virtual_node_;
};

/// Which score function a HierarchicalPoolEncoder uses.
enum class PoolKind { kTopK, kSag };

/// Hierarchical pooling encoder (the SAGPool-h architecture): blocks of
/// GCN convolution + top-k pooling; after every block a [mean‖max]
/// readout is taken and the block readouts are summed. output_dim is
/// therefore 2·hidden_dim.
class HierarchicalPoolEncoder : public GraphEncoder {
 public:
  HierarchicalPoolEncoder(PoolKind kind, const EncoderConfig& config,
                          Rng* rng);

  Variable Encode(const GraphBatch& batch, bool training, Rng* rng) override;
  int output_dim() const override { return 2 * config_.hidden_dim; }

 private:
  EncoderConfig config_;
  std::unique_ptr<Linear> embed_;
  std::vector<std::unique_ptr<GcnConv>> convs_;
  std::vector<std::unique_ptr<TopKPool>> topk_pools_;
  std::vector<std::unique_ptr<SagPool>> sag_pools_;
};

/// Stack of FactorGCN convolutions with a mean readout.
class FactorGcnEncoder : public GraphEncoder {
 public:
  FactorGcnEncoder(const EncoderConfig& config, Rng* rng);

  Variable Encode(const GraphBatch& batch, bool training, Rng* rng) override;
  int output_dim() const override { return config_.hidden_dim; }

 private:
  EncoderConfig config_;
  std::unique_ptr<Linear> embed_;
  std::vector<std::unique_ptr<FactorGcnConv>> convs_;
};

}  // namespace oodgnn

#endif  // OODGNN_GNN_ENCODER_H_
