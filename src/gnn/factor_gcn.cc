#include "src/gnn/factor_gcn.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

FactorGcnConv::FactorGcnConv(int in_dim, int out_dim, int num_factors,
                             Rng* rng) {
  OODGNN_CHECK_GT(num_factors, 0);
  OODGNN_CHECK_EQ(out_dim % num_factors, 0)
      << "out_dim must be divisible by num_factors";
  const int factor_dim = out_dim / num_factors;
  for (int f = 0; f < num_factors; ++f) {
    attention_.push_back(std::make_unique<Linear>(2 * in_dim, 1, rng));
    values_.push_back(std::make_unique<Linear>(in_dim, factor_dim, rng));
    RegisterModule(attention_.back().get());
    RegisterModule(values_.back().get());
  }
}

Variable FactorGcnConv::Forward(const Variable& h,
                                const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  last_attention_.clear();

  const bool planned = batch.has_plans();
  Variable endpoints;
  if (!batch.edge_src.empty()) {
    endpoints =
        planned ? ConcatCols({RowGather(h, BySrc(batch.plan)),
                              RowGather(h, ByDst(batch.plan))})
                : ConcatCols({RowGather(h, batch.edge_src),
                              RowGather(h, batch.edge_dst)});
  }

  std::vector<Variable> factor_outputs;
  factor_outputs.reserve(values_.size());
  for (size_t f = 0; f < values_.size(); ++f) {
    Variable transformed = values_[f]->Forward(h);
    if (batch.edge_src.empty()) {
      factor_outputs.push_back(Relu(transformed));
      last_attention_.emplace_back();
      continue;
    }
    Variable alpha = Sigmoid(attention_[f]->Forward(endpoints));  // [E,1]
    last_attention_.push_back(alpha.value());
    Variable aggregated;
    if (planned) {
      aggregated = GatherScatterWeighted(transformed, alpha, batch.plan);
    } else {
      Variable messages =
          MulColVec(RowGather(transformed, batch.edge_src), alpha);
      aggregated = ScatterAddRows(messages, batch.edge_dst, batch.num_nodes);
    }
    factor_outputs.push_back(Relu(Add(transformed, aggregated)));
  }
  return ConcatCols(factor_outputs);
}

}  // namespace oodgnn
