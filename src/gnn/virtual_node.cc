#include "src/gnn/virtual_node.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

VirtualNode::VirtualNode(int dim, Rng* rng) : dim_(dim) {
  update_mlp_ = std::make_unique<Mlp>(std::vector<int>{dim, dim, dim}, rng,
                                      /*batch_norm=*/true);
  RegisterModule(update_mlp_.get());
}

Variable VirtualNode::InitialState(int num_graphs) const {
  return Variable::Constant(Tensor(num_graphs, dim_));
}

Variable VirtualNode::Distribute(const Variable& h, const Variable& vn,
                                 const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.cols(), dim_);
  OODGNN_CHECK_EQ(vn.rows(), batch.num_graphs);
  Variable broadcast = batch.has_plans()
                           ? RowGather(vn, batch.node_plan)
                           : RowGather(vn, batch.node_graph);
  return Add(h, broadcast);
}

Variable VirtualNode::Update(const Variable& vn, const Variable& h,
                             const GraphBatch& batch, bool training) {
  Variable pooled = batch.has_plans()
                        ? SegmentSum(h, batch.node_plan)
                        : SegmentSum(h, batch.node_graph, batch.num_graphs);
  return update_mlp_->Forward(Add(vn, pooled), training);
}

}  // namespace oodgnn
