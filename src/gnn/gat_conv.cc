#include "src/gnn/gat_conv.h"

#include "src/nn/init.h"
#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

GatConv::GatConv(int in_dim, int out_dim, int num_heads, Rng* rng) {
  OODGNN_CHECK_GT(num_heads, 0);
  OODGNN_CHECK_EQ(out_dim % num_heads, 0)
      << "out_dim must be divisible by num_heads";
  const int head_dim = out_dim / num_heads;
  for (int h = 0; h < num_heads; ++h) {
    value_.push_back(
        std::make_unique<Linear>(in_dim, head_dim, rng, /*bias=*/false));
    RegisterModule(value_.back().get());
    attn_src_.push_back(RegisterParameter(GlorotUniform(head_dim, 1, rng)));
    attn_dst_.push_back(RegisterParameter(GlorotUniform(head_dim, 1, rng)));
  }
}

Variable GatConv::Forward(const Variable& h, const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  const int n = batch.num_nodes;

  // Self loops guarantee every node attends to at least itself.
  std::vector<int> src = batch.edge_src;
  std::vector<int> dst = batch.edge_dst;
  src.reserve(src.size() + static_cast<size_t>(n));
  dst.reserve(dst.size() + static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    src.push_back(v);
    dst.push_back(v);
  }

  std::vector<Variable> head_outputs;
  head_outputs.reserve(value_.size());
  for (size_t head = 0; head < value_.size(); ++head) {
    Variable transformed = value_[head]->Forward(h);
    Variable src_score = MatMul(transformed, attn_src_[head]);  // [N,1]
    Variable dst_score = MatMul(transformed, attn_dst_[head]);  // [N,1]
    Variable edge_score = LeakyRelu(
        Add(RowGather(src_score, src), RowGather(dst_score, dst)));

    // Numerically stable segment softmax over each target's in-edges.
    Variable seg_max = SegmentMax(edge_score, dst, n);
    Variable shifted = Sub(edge_score, RowGather(seg_max, dst));
    Variable exp_score = ExpOp(shifted);
    Variable seg_sum = SegmentSum(exp_score, dst, n);
    Variable alpha =
        Mul(exp_score, Reciprocal(RowGather(seg_sum, dst)));

    Variable messages = MulColVec(RowGather(transformed, src), alpha);
    head_outputs.push_back(ScatterAddRows(messages, dst, n));
  }
  return ConcatCols(head_outputs);
}

}  // namespace oodgnn
