#include "src/gnn/gat_conv.h"

#include "src/nn/init.h"
#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

GatConv::GatConv(int in_dim, int out_dim, int num_heads, Rng* rng) {
  OODGNN_CHECK_GT(num_heads, 0);
  OODGNN_CHECK_EQ(out_dim % num_heads, 0)
      << "out_dim must be divisible by num_heads";
  const int head_dim = out_dim / num_heads;
  for (int h = 0; h < num_heads; ++h) {
    value_.push_back(
        std::make_unique<Linear>(in_dim, head_dim, rng, /*bias=*/false));
    RegisterModule(value_.back().get());
    attn_src_.push_back(RegisterParameter(GlorotUniform(head_dim, 1, rng)));
    attn_dst_.push_back(RegisterParameter(GlorotUniform(head_dim, 1, rng)));
  }
}

Variable GatConv::Forward(const Variable& h, const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  const int n = batch.num_nodes;

  // Self loops guarantee every node attends to at least itself. The
  // batch caches a plan over this augmented topology (original edges
  // followed by one self-loop per node, the same order built here).
  const bool planned = batch.has_plans();
  std::vector<int> local_src;
  std::vector<int> local_dst;
  if (!planned) {
    local_src = batch.edge_src;
    local_dst = batch.edge_dst;
    local_src.reserve(local_src.size() + static_cast<size_t>(n));
    local_dst.reserve(local_dst.size() + static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) {
      local_src.push_back(v);
      local_dst.push_back(v);
    }
  }
  const std::vector<int>& src =
      planned ? batch.self_loop_plan->src() : local_src;
  const std::vector<int>& dst =
      planned ? batch.self_loop_plan->dst() : local_dst;
  SegmentPlanPtr by_src, by_dst;
  if (planned) {
    by_src = BySrc(batch.self_loop_plan);
    by_dst = ByDst(batch.self_loop_plan);
  }
  // No gather-scatter fusion here: fusing the final aggregation would
  // move the message-path gradient ahead of the attention-score
  // gradients in transformed.grad's accumulation order.
  auto gather_src = [&](const Variable& a) {
    return planned ? RowGather(a, by_src) : RowGather(a, src);
  };
  auto gather_dst = [&](const Variable& a) {
    return planned ? RowGather(a, by_dst) : RowGather(a, dst);
  };

  std::vector<Variable> head_outputs;
  head_outputs.reserve(value_.size());
  for (size_t head = 0; head < value_.size(); ++head) {
    Variable transformed = value_[head]->Forward(h);
    Variable src_score = MatMul(transformed, attn_src_[head]);  // [N,1]
    Variable dst_score = MatMul(transformed, attn_dst_[head]);  // [N,1]
    Variable edge_score = LeakyRelu(
        Add(gather_src(src_score), gather_dst(dst_score)));

    // Numerically stable segment softmax over each target's in-edges.
    Variable seg_max = planned ? SegmentMax(edge_score, by_dst)
                               : SegmentMax(edge_score, dst, n);
    Variable shifted = Sub(edge_score, gather_dst(seg_max));
    Variable exp_score = ExpOp(shifted);
    Variable seg_sum = planned ? SegmentSum(exp_score, by_dst)
                               : SegmentSum(exp_score, dst, n);
    Variable alpha =
        Mul(exp_score, Reciprocal(gather_dst(seg_sum)));

    Variable messages = MulColVec(gather_src(transformed), alpha);
    head_outputs.push_back(planned
                               ? ScatterAddRows(messages, by_dst)
                               : ScatterAddRows(messages, dst, n));
  }
  return ConcatCols(head_outputs);
}

}  // namespace oodgnn
