#include "src/gnn/sage_conv.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

SageConv::SageConv(int in_dim, int out_dim, Rng* rng)
    : self_(std::make_unique<Linear>(in_dim, out_dim, rng)),
      neighbor_(
          std::make_unique<Linear>(in_dim, out_dim, rng, /*bias=*/false)) {
  RegisterModule(self_.get());
  RegisterModule(neighbor_.get());
}

Variable SageConv::Forward(const Variable& h, const GraphBatch& batch) const {
  OODGNN_CHECK_EQ(h.rows(), batch.num_nodes);
  Variable out = self_->Forward(h);
  if (batch.edge_src.empty()) return out;
  Variable mean_neighbors;
  if (batch.has_plans()) {
    // Fused sum, scaled by 1/in-degree (same arithmetic as the
    // unplanned SegmentMean's count reciprocal).
    std::vector<float> inv_count(static_cast<size_t>(batch.num_nodes));
    for (int v = 0; v < batch.num_nodes; ++v) {
      const int count = batch.in_degree[static_cast<size_t>(v)];
      inv_count[static_cast<size_t>(v)] =
          count > 0 ? 1.f / static_cast<float>(count) : 0.f;
    }
    mean_neighbors =
        MulColVec(GatherScatter(h, batch.plan),
                  Variable::Constant(Tensor::ColVector(inv_count)));
  } else {
    mean_neighbors = SegmentMean(RowGather(h, batch.edge_src),
                                 batch.edge_dst, batch.num_nodes);
  }
  return Add(out, neighbor_->Forward(mean_neighbors));
}

}  // namespace oodgnn
