#include "src/nn/mlp.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

Mlp::Mlp(const std::vector<int>& dims, Rng* rng, bool batch_norm)
    : dims_(dims) {
  OODGNN_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule(layers_.back().get());
    const bool is_hidden = i + 2 < dims.size();
    if (batch_norm && is_hidden) {
      norms_.push_back(std::make_unique<BatchNorm1d>(dims[i + 1]));
      RegisterModule(norms_.back().get());
    } else if (batch_norm) {
      norms_.push_back(nullptr);
    }
  }
}

Variable Mlp::Forward(const Variable& x, bool training) {
  Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    const bool is_hidden = i + 1 < layers_.size();
    if (is_hidden) {
      if (!norms_.empty() && norms_[i]) h = norms_[i]->Forward(h, training);
      h = Relu(h);
    }
  }
  return h;
}

}  // namespace oodgnn
