#ifndef OODGNN_NN_BATCHNORM_H_
#define OODGNN_NN_BATCHNORM_H_

#include "src/nn/module.h"
#include "src/tensor/variable.h"

namespace oodgnn {

/// 1-D batch normalization over the row dimension (features are
/// columns). Maintains running statistics for evaluation mode.
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(int num_features, float momentum = 0.1f,
                       float eps = 1e-5f);

  /// x: [m, num_features]. In training mode normalizes with batch
  /// statistics (differentiably) and updates the running estimates; in
  /// eval mode uses the running estimates as constants.
  Variable Forward(const Variable& x, bool training);

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int num_features_;
  float momentum_;
  float eps_;
  Variable gamma_;
  Variable beta_;
  Tensor running_mean_;
  Tensor running_var_;
};

}  // namespace oodgnn

#endif  // OODGNN_NN_BATCHNORM_H_
