#include "src/nn/linear.h"

#include "src/nn/init.h"
#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(GlorotUniform(in_features, out_features, rng));
  if (bias) {
    bias_ = RegisterParameter(Tensor(1, out_features));
  }
}

Variable Linear::Forward(const Variable& x) const {
  OODGNN_CHECK_EQ(x.cols(), in_features_);
  Variable out = MatMul(x, weight_);
  if (bias_.defined()) out = AddRowVec(out, bias_);
  return out;
}

}  // namespace oodgnn
