#include "src/nn/init.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {

Tensor GlorotUniform(int fan_in, int fan_out, Rng* rng) {
  OODGNN_CHECK(fan_in > 0 && fan_out > 0);
  const float a =
      std::sqrt(6.f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandomUniform(fan_in, fan_out, rng, -a, a);
}

Tensor HeNormal(int fan_in, int fan_out, Rng* rng) {
  OODGNN_CHECK(fan_in > 0 && fan_out > 0);
  const float stddev = std::sqrt(2.f / static_cast<float>(fan_in));
  return Tensor::RandomNormal(fan_in, fan_out, rng, 0.f, stddev);
}

}  // namespace oodgnn
