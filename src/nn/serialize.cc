#include "src/nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "src/nn/module.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace oodgnn {
namespace {

constexpr uint32_t kMagic = 0x4F4F4447;  // "OODG"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* file, uint32_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}

bool ReadU32(std::FILE* file, uint32_t* value) {
  return std::fread(value, sizeof(*value), 1, file) == 1;
}

}  // namespace

bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) {
    OODGNN_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  if (!WriteU32(file.get(), kMagic) || !WriteU32(file.get(), kVersion) ||
      !WriteU32(file.get(), static_cast<uint32_t>(parameters.size()))) {
    return false;
  }
  for (const Variable& param : parameters) {
    OODGNN_CHECK(param.defined());
    const Tensor& value = param.value();
    if (!WriteU32(file.get(), static_cast<uint32_t>(value.rows())) ||
        !WriteU32(file.get(), static_cast<uint32_t>(value.cols()))) {
      return false;
    }
    const size_t count = static_cast<size_t>(value.size());
    if (std::fwrite(value.data(), sizeof(float), count, file.get()) !=
        count) {
      return false;
    }
  }
  return true;
}

bool SaveParameters(const std::string& path, const Module& module) {
  return SaveParameters(path, module.Parameters());
}

bool LoadParameters(const std::string& path,
                    std::vector<Variable> parameters) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    OODGNN_LOG(Error) << "cannot open " << path << " for reading";
    return false;
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!ReadU32(file.get(), &magic) || !ReadU32(file.get(), &version) ||
      !ReadU32(file.get(), &count)) {
    return false;
  }
  if (magic != kMagic) {
    OODGNN_LOG(Error) << path << " is not an oodgnn checkpoint";
    return false;
  }
  if (version != kVersion) {
    OODGNN_LOG(Error) << path << ": unsupported checkpoint version "
                      << version;
    return false;
  }
  OODGNN_CHECK_EQ(count, parameters.size())
      << "checkpoint has " << count << " tensors, module expects "
      << parameters.size();
  for (Variable& param : parameters) {
    uint32_t rows = 0;
    uint32_t cols = 0;
    if (!ReadU32(file.get(), &rows) || !ReadU32(file.get(), &cols)) {
      return false;
    }
    Tensor& value = param.mutable_value();
    OODGNN_CHECK(static_cast<int>(rows) == value.rows() &&
                 static_cast<int>(cols) == value.cols())
        << "checkpoint tensor is " << rows << "x" << cols
        << " but the parameter is " << value.rows() << "x" << value.cols();
    const size_t elements = static_cast<size_t>(value.size());
    if (std::fread(value.data(), sizeof(float), elements, file.get()) !=
        elements) {
      return false;
    }
  }
  return true;
}

bool LoadParameters(const std::string& path, Module* module) {
  OODGNN_CHECK(module != nullptr);
  return LoadParameters(path, module->Parameters());
}

}  // namespace oodgnn
