#include "src/nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

#include "src/nn/module.h"
#include "src/util/check.h"
#include "src/util/file.h"
#include "src/util/logging.h"

namespace oodgnn {
namespace {

constexpr uint32_t kMagic = 0x4F4F4447;  // "OODG"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* file, uint32_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

void BinaryPayloadWriter::Append(const void* data, size_t size) {
  payload_.append(static_cast<const char*>(data), size);
}

void BinaryPayloadWriter::PutString(const std::string& value) {
  PutU64(value.size());
  Append(value.data(), value.size());
}

void BinaryPayloadWriter::PutTensor(const Tensor& value) {
  PutU32(static_cast<uint32_t>(value.rows()));
  PutU32(static_cast<uint32_t>(value.cols()));
  Append(value.data(), static_cast<size_t>(value.size()) * sizeof(float));
}

void BinaryPayloadWriter::PutF32Vector(const std::vector<float>& values) {
  PutU64(values.size());
  Append(values.data(), values.size() * sizeof(float));
}

void BinaryPayloadWriter::PutF64Vector(const std::vector<double>& values) {
  PutU64(values.size());
  Append(values.data(), values.size() * sizeof(double));
}

void BinaryPayloadWriter::PutU64Vector(const std::vector<uint64_t>& values) {
  PutU64(values.size());
  Append(values.data(), values.size() * sizeof(uint64_t));
}

bool BinaryPayloadReader::Fetch(void* out, size_t size) {
  if (size > remaining()) return false;
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return true;
}

bool BinaryPayloadReader::GetString(std::string* value) {
  uint64_t length = 0;
  if (!GetU64(&length) || length > remaining()) return false;
  value->assign(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(length));
  pos_ += static_cast<size_t>(length);
  return true;
}

bool BinaryPayloadReader::GetTensor(Tensor* value) {
  uint32_t rows = 0;
  uint32_t cols = 0;
  if (!GetU32(&rows) || !GetU32(&cols)) return false;
  const uint64_t elements = static_cast<uint64_t>(rows) * cols;
  // The element count must both fit the Tensor's int index space and be
  // backed by actual payload bytes before anything is allocated.
  if (rows > static_cast<uint32_t>(std::numeric_limits<int>::max()) ||
      cols > static_cast<uint32_t>(std::numeric_limits<int>::max()) ||
      elements > static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
      elements * sizeof(float) > remaining()) {
    return false;
  }
  Tensor result(static_cast<int>(rows), static_cast<int>(cols));
  if (!Fetch(result.data(), static_cast<size_t>(elements) * sizeof(float))) {
    return false;
  }
  *value = std::move(result);
  return true;
}

bool BinaryPayloadReader::GetF32Vector(std::vector<float>* values) {
  uint64_t count = 0;
  if (!GetU64(&count) || count > remaining() / sizeof(float)) return false;
  values->resize(static_cast<size_t>(count));
  return Fetch(values->data(), static_cast<size_t>(count) * sizeof(float));
}

bool BinaryPayloadReader::GetF64Vector(std::vector<double>* values) {
  uint64_t count = 0;
  if (!GetU64(&count) || count > remaining() / sizeof(double)) return false;
  values->resize(static_cast<size_t>(count));
  return Fetch(values->data(), static_cast<size_t>(count) * sizeof(double));
}

bool BinaryPayloadReader::GetU64Vector(std::vector<uint64_t>* values) {
  uint64_t count = 0;
  if (!GetU64(&count) || count > remaining() / sizeof(uint64_t)) return false;
  values->resize(static_cast<size_t>(count));
  return Fetch(values->data(), static_cast<size_t>(count) * sizeof(uint64_t));
}

bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) {
    OODGNN_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  if (!WriteU32(file.get(), kMagic) || !WriteU32(file.get(), kVersion) ||
      !WriteU32(file.get(), static_cast<uint32_t>(parameters.size()))) {
    return false;
  }
  for (const Variable& param : parameters) {
    OODGNN_CHECK(param.defined());
    const Tensor& value = param.value();
    if (!WriteU32(file.get(), static_cast<uint32_t>(value.rows())) ||
        !WriteU32(file.get(), static_cast<uint32_t>(value.cols()))) {
      return false;
    }
    const size_t count = static_cast<size_t>(value.size());
    if (std::fwrite(value.data(), sizeof(float), count, file.get()) !=
        count) {
      return false;
    }
  }
  return true;
}

bool SaveParameters(const std::string& path, const Module& module) {
  return SaveParameters(path, module.Parameters());
}

bool LoadParameters(const std::string& path,
                    std::vector<Variable> parameters) {
  std::string bytes;
  if (!ReadFileToString(path, &bytes)) {
    OODGNN_LOG(Error) << "cannot open " << path << " for reading";
    return false;
  }
  BinaryPayloadReader reader(bytes.data(), bytes.size());
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!reader.GetU32(&magic) || !reader.GetU32(&version) ||
      !reader.GetU32(&count)) {
    OODGNN_LOG(Error) << path << ": truncated checkpoint header";
    return false;
  }
  if (magic != kMagic) {
    OODGNN_LOG(Error) << path << " is not an oodgnn checkpoint";
    return false;
  }
  if (version != kVersion) {
    OODGNN_LOG(Error) << path << ": unsupported checkpoint version "
                      << version;
    return false;
  }
  // Each tensor record is at least its 8-byte shape header, so a
  // header-declared count larger than the file can back is rejected
  // before any allocation.
  if (count != parameters.size() ||
      static_cast<uint64_t>(count) * 8 > reader.remaining()) {
    OODGNN_LOG(Error) << path << ": checkpoint declares " << count
                      << " tensors, module expects " << parameters.size()
                      << " (" << reader.remaining() << " payload bytes)";
    return false;
  }
  // Stage everything first so a file that fails halfway leaves the
  // module untouched.
  std::vector<Tensor> staged(parameters.size());
  for (size_t i = 0; i < parameters.size(); ++i) {
    if (!reader.GetTensor(&staged[i])) {
      OODGNN_LOG(Error) << path << ": tensor " << i
                        << " is truncated or oversized";
      return false;
    }
    const Tensor& expected = parameters[i].value();
    if (!staged[i].SameShape(expected)) {
      OODGNN_LOG(Error) << path << ": checkpoint tensor " << i << " is "
                        << staged[i].rows() << "x" << staged[i].cols()
                        << " but the parameter is " << expected.rows() << "x"
                        << expected.cols();
      return false;
    }
  }
  if (!reader.AtEnd()) {
    OODGNN_LOG(Error) << path << ": " << reader.remaining()
                      << " trailing bytes after the last tensor";
    return false;
  }
  for (size_t i = 0; i < parameters.size(); ++i) {
    parameters[i].mutable_value() = std::move(staged[i]);
  }
  return true;
}

bool LoadParameters(const std::string& path, Module* module) {
  OODGNN_CHECK(module != nullptr);
  return LoadParameters(path, module->Parameters());
}

}  // namespace oodgnn
