#include "src/nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "src/nn/module.h"
#include "src/tensor/quant.h"
#include "src/util/check.h"
#include "src/util/file.h"
#include "src/util/logging.h"

namespace oodgnn {
namespace {

constexpr uint32_t kMagic = 0x4F4F4447;  // "OODG"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* file, uint32_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

void BinaryPayloadWriter::Append(const void* data, size_t size) {
  payload_.append(static_cast<const char*>(data), size);
}

void BinaryPayloadWriter::PutString(const std::string& value) {
  PutU64(value.size());
  Append(value.data(), value.size());
}

void BinaryPayloadWriter::PutTensor(const Tensor& value) {
  PutU32(static_cast<uint32_t>(value.rows()));
  PutU32(static_cast<uint32_t>(value.cols()));
  Append(value.data(), static_cast<size_t>(value.size()) * sizeof(float));
}

void BinaryPayloadWriter::PutF32Vector(const std::vector<float>& values) {
  PutU64(values.size());
  Append(values.data(), values.size() * sizeof(float));
}

void BinaryPayloadWriter::PutF64Vector(const std::vector<double>& values) {
  PutU64(values.size());
  Append(values.data(), values.size() * sizeof(double));
}

void BinaryPayloadWriter::PutU64Vector(const std::vector<uint64_t>& values) {
  PutU64(values.size());
  Append(values.data(), values.size() * sizeof(uint64_t));
}

void BinaryPayloadWriter::PutI8Vector(const std::vector<int8_t>& values) {
  PutU64(values.size());
  Append(values.data(), values.size() * sizeof(int8_t));
}

bool BinaryPayloadReader::Fetch(void* out, size_t size) {
  if (size > remaining()) return false;
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return true;
}

bool BinaryPayloadReader::GetString(std::string* value) {
  uint64_t length = 0;
  if (!GetU64(&length) || length > remaining()) return false;
  value->assign(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(length));
  pos_ += static_cast<size_t>(length);
  return true;
}

bool BinaryPayloadReader::GetTensor(Tensor* value) {
  uint32_t rows = 0;
  uint32_t cols = 0;
  if (!GetU32(&rows) || !GetU32(&cols)) return false;
  const uint64_t elements = static_cast<uint64_t>(rows) * cols;
  // The element count must both fit the Tensor's int index space and be
  // backed by actual payload bytes before anything is allocated.
  if (rows > static_cast<uint32_t>(std::numeric_limits<int>::max()) ||
      cols > static_cast<uint32_t>(std::numeric_limits<int>::max()) ||
      elements > static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
      elements * sizeof(float) > remaining()) {
    return false;
  }
  Tensor result(static_cast<int>(rows), static_cast<int>(cols));
  if (!Fetch(result.data(), static_cast<size_t>(elements) * sizeof(float))) {
    return false;
  }
  *value = std::move(result);
  return true;
}

bool BinaryPayloadReader::GetF32Vector(std::vector<float>* values) {
  uint64_t count = 0;
  if (!GetU64(&count) || count > remaining() / sizeof(float)) return false;
  values->resize(static_cast<size_t>(count));
  return Fetch(values->data(), static_cast<size_t>(count) * sizeof(float));
}

bool BinaryPayloadReader::GetF64Vector(std::vector<double>* values) {
  uint64_t count = 0;
  if (!GetU64(&count) || count > remaining() / sizeof(double)) return false;
  values->resize(static_cast<size_t>(count));
  return Fetch(values->data(), static_cast<size_t>(count) * sizeof(double));
}

bool BinaryPayloadReader::GetU64Vector(std::vector<uint64_t>* values) {
  uint64_t count = 0;
  if (!GetU64(&count) || count > remaining() / sizeof(uint64_t)) return false;
  values->resize(static_cast<size_t>(count));
  return Fetch(values->data(), static_cast<size_t>(count) * sizeof(uint64_t));
}

bool BinaryPayloadReader::GetI8Vector(std::vector<int8_t>* values) {
  uint64_t count = 0;
  if (!GetU64(&count) || count > remaining()) return false;
  values->resize(static_cast<size_t>(count));
  return Fetch(values->data(), static_cast<size_t>(count) * sizeof(int8_t));
}

bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) {
    OODGNN_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  if (!WriteU32(file.get(), kMagic) || !WriteU32(file.get(), kVersion) ||
      !WriteU32(file.get(), static_cast<uint32_t>(parameters.size()))) {
    return false;
  }
  for (const Variable& param : parameters) {
    OODGNN_CHECK(param.defined());
    const Tensor& value = param.value();
    if (!WriteU32(file.get(), static_cast<uint32_t>(value.rows())) ||
        !WriteU32(file.get(), static_cast<uint32_t>(value.cols()))) {
      return false;
    }
    const size_t count = static_cast<size_t>(value.size());
    if (std::fwrite(value.data(), sizeof(float), count, file.get()) !=
        count) {
      return false;
    }
  }
  return true;
}

bool SaveParameters(const std::string& path, const Module& module) {
  return SaveParameters(path, module.Parameters());
}

bool LoadParameters(const std::string& path,
                    std::vector<Variable> parameters) {
  std::string bytes;
  if (!ReadFileToString(path, &bytes)) {
    OODGNN_LOG(Error) << "cannot open " << path << " for reading";
    return false;
  }
  BinaryPayloadReader reader(bytes.data(), bytes.size());
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!reader.GetU32(&magic) || !reader.GetU32(&version) ||
      !reader.GetU32(&count)) {
    OODGNN_LOG(Error) << path << ": truncated checkpoint header";
    return false;
  }
  if (magic != kMagic) {
    OODGNN_LOG(Error) << path << " is not an oodgnn checkpoint";
    return false;
  }
  if (version != kVersion) {
    OODGNN_LOG(Error) << path << ": unsupported checkpoint version "
                      << version;
    return false;
  }
  // Each tensor record is at least its 8-byte shape header, so a
  // header-declared count larger than the file can back is rejected
  // before any allocation.
  if (count != parameters.size() ||
      static_cast<uint64_t>(count) * 8 > reader.remaining()) {
    OODGNN_LOG(Error) << path << ": checkpoint declares " << count
                      << " tensors, module expects " << parameters.size()
                      << " (" << reader.remaining() << " payload bytes)";
    return false;
  }
  // Stage everything first so a file that fails halfway leaves the
  // module untouched.
  std::vector<Tensor> staged(parameters.size());
  for (size_t i = 0; i < parameters.size(); ++i) {
    if (!reader.GetTensor(&staged[i])) {
      OODGNN_LOG(Error) << path << ": tensor " << i
                        << " is truncated or oversized";
      return false;
    }
    const Tensor& expected = parameters[i].value();
    if (!staged[i].SameShape(expected)) {
      OODGNN_LOG(Error) << path << ": checkpoint tensor " << i << " is "
                        << staged[i].rows() << "x" << staged[i].cols()
                        << " but the parameter is " << expected.rows() << "x"
                        << expected.cols();
      return false;
    }
  }
  if (!reader.AtEnd()) {
    OODGNN_LOG(Error) << path << ": " << reader.remaining()
                      << " trailing bytes after the last tensor";
    return false;
  }
  for (size_t i = 0; i < parameters.size(); ++i) {
    parameters[i].mutable_value() = std::move(staged[i]);
  }
  return true;
}

bool LoadParameters(const std::string& path, Module* module) {
  OODGNN_CHECK(module != nullptr);
  return LoadParameters(path, module->Parameters());
}

namespace {

constexpr uint32_t kModelMagic = 0x4F4F444D;  // "OODM"
constexpr uint32_t kModelVersion = 1;
constexpr uint32_t kQuantModelMagic = 0x4F4F4451;  // "OODQ"
constexpr uint32_t kQuantModelVersion = 1;

/// Only matrix parameters are worth quantizing: bias vectors and
/// learned scalars are a rounding error of the footprint, but their
/// quantization error would land directly on every output row.
bool QuantEligible(const Tensor& value) {
  return value.rows() > 1 && value.cols() > 1;
}

/// Writes one framed snapshot file: magic, version, payload size,
/// FNV-1a checksum, payload.
bool WriteFramedFile(const std::string& path, uint32_t magic,
                     uint32_t version, const std::string& payload) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) {
    OODGNN_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  const uint64_t size = payload.size();
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  if (!WriteU32(file.get(), magic) || !WriteU32(file.get(), version) ||
      std::fwrite(&size, sizeof(size), 1, file.get()) != 1 ||
      std::fwrite(&checksum, sizeof(checksum), 1, file.get()) != 1 ||
      std::fwrite(payload.data(), 1, payload.size(), file.get()) !=
          payload.size()) {
    OODGNN_LOG(Error) << "short write to " << path;
    return false;
  }
  return true;
}

/// Validates a framed file's magic, version, declared size and
/// checksum, returning a view of the payload inside `bytes` (null on
/// any mismatch, with the reason logged).
const char* ValidateFramedPayload(const std::string& path,
                                  const std::string& bytes,
                                  uint32_t expected_magic,
                                  uint32_t expected_version,
                                  const char* kind, size_t* payload_size) {
  BinaryPayloadReader header(bytes.data(), bytes.size());
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t declared_size = 0;
  uint64_t declared_checksum = 0;
  if (!header.GetU32(&magic) || !header.GetU32(&version) ||
      !header.GetU64(&declared_size) || !header.GetU64(&declared_checksum)) {
    OODGNN_LOG(Error) << path << ": truncated " << kind << " header";
    return nullptr;
  }
  if (magic != expected_magic) {
    OODGNN_LOG(Error) << path << " is not an oodgnn " << kind << " file";
    return nullptr;
  }
  if (version != expected_version) {
    OODGNN_LOG(Error) << path << ": unsupported " << kind << " version "
                      << version;
    return nullptr;
  }
  if (declared_size != header.remaining()) {
    OODGNN_LOG(Error) << path << ": payload is " << header.remaining()
                      << " bytes but the header declares " << declared_size;
    return nullptr;
  }
  const char* payload = bytes.data() + (bytes.size() - header.remaining());
  if (Fnv1a64(payload, header.remaining()) != declared_checksum) {
    OODGNN_LOG(Error) << path << ": checksum mismatch (corrupt file)";
    return nullptr;
  }
  *payload_size = header.remaining();
  return payload;
}

/// Reads one tensor per expected (rows, cols) shape into `staged`,
/// rejecting truncation and shape mismatches before anything is
/// applied to the module.
bool StageTensors(BinaryPayloadReader* reader, const std::string& path,
                  const char* kind,
                  const std::vector<std::pair<int, int>>& expected,
                  std::vector<Tensor>* staged) {
  staged->resize(expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    if (!reader->GetTensor(&(*staged)[i])) {
      OODGNN_LOG(Error) << path << ": " << kind << " tensor " << i
                        << " is truncated or oversized";
      return false;
    }
    if ((*staged)[i].rows() != expected[i].first ||
        (*staged)[i].cols() != expected[i].second) {
      OODGNN_LOG(Error) << path << ": " << kind << " tensor " << i << " is "
                        << (*staged)[i].rows() << "x" << (*staged)[i].cols()
                        << " but the module expects " << expected[i].first
                        << "x" << expected[i].second;
      return false;
    }
  }
  return true;
}

}  // namespace

bool SaveModelState(const std::string& path, const Module& module) {
  const std::vector<Variable> params = module.Parameters();
  const std::vector<Tensor*> buffers = module.Buffers();
  BinaryPayloadWriter writer;
  writer.PutU32(static_cast<uint32_t>(params.size()));
  for (const Variable& param : params) {
    OODGNN_CHECK(param.defined());
    writer.PutTensor(param.value());
  }
  writer.PutU32(static_cast<uint32_t>(buffers.size()));
  for (const Tensor* buffer : buffers) {
    OODGNN_CHECK(buffer != nullptr);
    writer.PutTensor(*buffer);
  }
  return WriteFramedFile(path, kModelMagic, kModelVersion, writer.payload());
}

bool LoadModelState(const std::string& path, Module* module) {
  OODGNN_CHECK(module != nullptr);
  std::string bytes;
  if (!ReadFileToString(path, &bytes)) {
    OODGNN_LOG(Error) << "cannot open " << path << " for reading";
    return false;
  }
  size_t payload_size = 0;
  const char* payload =
      ValidateFramedPayload(path, bytes, kModelMagic, kModelVersion,
                            "model-state", &payload_size);
  if (payload == nullptr) return false;

  const std::vector<Variable> params = module->Parameters();
  const std::vector<Tensor*> buffers = module->Buffers();
  BinaryPayloadReader reader(payload, payload_size);
  uint32_t param_count = 0;
  if (!reader.GetU32(&param_count) || param_count != params.size()) {
    OODGNN_LOG(Error) << path << ": model state declares " << param_count
                      << " parameters, module expects " << params.size();
    return false;
  }
  std::vector<std::pair<int, int>> param_shapes(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    param_shapes[i] = {params[i].value().rows(), params[i].value().cols()};
  }
  std::vector<Tensor> staged_params;
  if (!StageTensors(&reader, path, "parameter", param_shapes,
                    &staged_params)) {
    return false;
  }
  uint32_t buffer_count = 0;
  if (!reader.GetU32(&buffer_count) || buffer_count != buffers.size()) {
    OODGNN_LOG(Error) << path << ": model state declares " << buffer_count
                      << " buffers, module expects " << buffers.size();
    return false;
  }
  std::vector<std::pair<int, int>> buffer_shapes(buffers.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    buffer_shapes[i] = {buffers[i]->rows(), buffers[i]->cols()};
  }
  std::vector<Tensor> staged_buffers;
  if (!StageTensors(&reader, path, "buffer", buffer_shapes,
                    &staged_buffers)) {
    return false;
  }
  if (!reader.AtEnd()) {
    OODGNN_LOG(Error) << path << ": " << reader.remaining()
                      << " trailing bytes after the last tensor";
    return false;
  }
  // Everything validated; apply atomically. Variable copies share the
  // underlying node, so writing through `params` updates the module.
  for (size_t i = 0; i < params.size(); ++i) {
    Variable param = params[i];
    param.mutable_value() = std::move(staged_params[i]);
  }
  for (size_t i = 0; i < buffers.size(); ++i) {
    *buffers[i] = std::move(staged_buffers[i]);
  }
  return true;
}

bool SaveQuantizedModelState(const std::string& path, const Module& module) {
  const std::vector<Variable> params = module.Parameters();
  const std::vector<Tensor*> buffers = module.Buffers();
  BinaryPayloadWriter writer;
  writer.PutU32(static_cast<uint32_t>(params.size()));
  for (const Variable& param : params) {
    OODGNN_CHECK(param.defined());
    const Tensor& value = param.value();
    if (!QuantEligible(value)) {
      writer.PutU8(0);
      writer.PutTensor(value);
      continue;
    }
    const QuantizedTensor quantized = QuantizeQ8(value);
    writer.PutU8(1);
    writer.PutU32(static_cast<uint32_t>(quantized.rows));
    writer.PutU32(static_cast<uint32_t>(quantized.cols));
    writer.PutI8Vector(quantized.q);
    writer.PutF32Vector(quantized.scales);
  }
  writer.PutU32(static_cast<uint32_t>(buffers.size()));
  for (const Tensor* buffer : buffers) {
    OODGNN_CHECK(buffer != nullptr);
    writer.PutTensor(*buffer);
  }
  return WriteFramedFile(path, kQuantModelMagic, kQuantModelVersion,
                         writer.payload());
}

bool LoadQuantizedModelState(const std::string& path, Module* module) {
  OODGNN_CHECK(module != nullptr);
  std::string bytes;
  if (!ReadFileToString(path, &bytes)) {
    OODGNN_LOG(Error) << "cannot open " << path << " for reading";
    return false;
  }
  size_t payload_size = 0;
  const char* payload =
      ValidateFramedPayload(path, bytes, kQuantModelMagic, kQuantModelVersion,
                            "quantized model-state", &payload_size);
  if (payload == nullptr) return false;

  const std::vector<Variable> params = module->Parameters();
  const std::vector<Tensor*> buffers = module->Buffers();
  BinaryPayloadReader reader(payload, payload_size);
  uint32_t param_count = 0;
  if (!reader.GetU32(&param_count) || param_count != params.size()) {
    OODGNN_LOG(Error) << path << ": quantized model state declares "
                      << param_count << " parameters, module expects "
                      << params.size();
    return false;
  }
  std::vector<Tensor> staged_params(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor& expected = params[i].value();
    uint8_t tag = 0;
    if (!reader.GetU8(&tag)) {
      OODGNN_LOG(Error) << path << ": parameter " << i << " is truncated";
      return false;
    }
    if (tag == 0) {
      if (!reader.GetTensor(&staged_params[i])) {
        OODGNN_LOG(Error) << path << ": parameter " << i
                          << " is truncated or oversized";
        return false;
      }
      if (!staged_params[i].SameShape(expected)) {
        OODGNN_LOG(Error) << path << ": parameter " << i << " is "
                          << staged_params[i].rows() << "x"
                          << staged_params[i].cols()
                          << " but the module expects " << expected.rows()
                          << "x" << expected.cols();
        return false;
      }
      continue;
    }
    if (tag != 1) {
      OODGNN_LOG(Error) << path << ": parameter " << i
                        << " has unknown encoding tag "
                        << static_cast<int>(tag);
      return false;
    }
    uint32_t rows = 0;
    uint32_t cols = 0;
    if (!reader.GetU32(&rows) || !reader.GetU32(&cols)) {
      OODGNN_LOG(Error) << path << ": parameter " << i << " is truncated";
      return false;
    }
    if (rows != static_cast<uint32_t>(expected.rows()) ||
        cols != static_cast<uint32_t>(expected.cols())) {
      OODGNN_LOG(Error) << path << ": parameter " << i << " is " << rows
                        << "x" << cols << " but the module expects "
                        << expected.rows() << "x" << expected.cols();
      return false;
    }
    QuantizedTensor quantized;
    quantized.rows = static_cast<int>(rows);
    quantized.cols = static_cast<int>(cols);
    if (!reader.GetI8Vector(&quantized.q) ||
        quantized.q.size() !=
            static_cast<size_t>(rows) * static_cast<size_t>(cols)) {
      OODGNN_LOG(Error) << path << ": parameter " << i
                        << " has a truncated or mis-sized code block";
      return false;
    }
    if (!reader.GetF32Vector(&quantized.scales) ||
        quantized.scales.size() !=
            static_cast<size_t>(rows) *
                static_cast<size_t>(quantized.blocks_per_row())) {
      OODGNN_LOG(Error) << path << ": parameter " << i
                        << " has a truncated or mis-sized scale block";
      return false;
    }
    staged_params[i] = DequantizeQ8(quantized);
  }
  uint32_t buffer_count = 0;
  if (!reader.GetU32(&buffer_count) || buffer_count != buffers.size()) {
    OODGNN_LOG(Error) << path << ": quantized model state declares "
                      << buffer_count << " buffers, module expects "
                      << buffers.size();
    return false;
  }
  std::vector<std::pair<int, int>> buffer_shapes(buffers.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    buffer_shapes[i] = {buffers[i]->rows(), buffers[i]->cols()};
  }
  std::vector<Tensor> staged_buffers;
  if (!StageTensors(&reader, path, "buffer", buffer_shapes,
                    &staged_buffers)) {
    return false;
  }
  if (!reader.AtEnd()) {
    OODGNN_LOG(Error) << path << ": " << reader.remaining()
                      << " trailing bytes after the last tensor";
    return false;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Variable param = params[i];
    param.mutable_value() = std::move(staged_params[i]);
  }
  for (size_t i = 0; i < buffers.size(); ++i) {
    *buffers[i] = std::move(staged_buffers[i]);
  }
  return true;
}

bool LoadAnyModelState(const std::string& path, Module* module) {
  OODGNN_CHECK(module != nullptr);
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    OODGNN_LOG(Error) << "cannot open " << path << " for reading";
    return false;
  }
  uint32_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, file.get()) != 1) {
    OODGNN_LOG(Error) << path << ": truncated model-state header";
    return false;
  }
  file.reset();
  return magic == kQuantModelMagic ? LoadQuantizedModelState(path, module)
                                   : LoadModelState(path, module);
}

}  // namespace oodgnn
