#ifndef OODGNN_NN_MODULE_H_
#define OODGNN_NN_MODULE_H_

#include <cstdint>
#include <vector>

#include "src/tensor/variable.h"

namespace oodgnn {

/// Base class for trainable components. Subclasses register their
/// parameters (trainable leaf Variables) and child modules in their
/// constructor; `Parameters()` flattens the tree for the optimizer.
///
/// Modules are not copyable: parameter handles are shared state.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered children.
  std::vector<Variable> Parameters() const;

  /// Zeroes gradients of all parameters.
  void ZeroGrad();

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

 protected:
  /// Wraps `init` as a trainable leaf, registers and returns it.
  Variable RegisterParameter(Tensor init);

  /// Registers a child module (non-owning; the child must outlive this).
  void RegisterModule(Module* child);

 private:
  std::vector<Variable> params_;
  std::vector<Module*> children_;
};

}  // namespace oodgnn

#endif  // OODGNN_NN_MODULE_H_
