#ifndef OODGNN_NN_MODULE_H_
#define OODGNN_NN_MODULE_H_

#include <cstdint>
#include <vector>

#include "src/tensor/variable.h"

namespace oodgnn {

/// Base class for trainable components. Subclasses register their
/// parameters (trainable leaf Variables) and child modules in their
/// constructor; `Parameters()` flattens the tree for the optimizer.
///
/// Modules are not copyable: parameter handles are shared state.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered children.
  std::vector<Variable> Parameters() const;

  /// All non-trainable state tensors (e.g. batch-norm running
  /// statistics) of this module and its registered children, in a
  /// stable registration order. Buffers evolve during training without
  /// receiving gradients, so checkpoints must carry them alongside the
  /// parameters for evaluation to reproduce exactly.
  std::vector<Tensor*> Buffers() const;

  /// Zeroes gradients of all parameters.
  void ZeroGrad();

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

 protected:
  /// Wraps `init` as a trainable leaf, registers and returns it.
  Variable RegisterParameter(Tensor init);

  /// Registers a non-trainable state tensor owned by the subclass
  /// (non-owning; the tensor must outlive this module).
  void RegisterBuffer(Tensor* buffer);

  /// Registers a child module (non-owning; the child must outlive this).
  void RegisterModule(Module* child);

 private:
  std::vector<Variable> params_;
  std::vector<Tensor*> buffers_;
  std::vector<Module*> children_;
};

}  // namespace oodgnn

#endif  // OODGNN_NN_MODULE_H_
