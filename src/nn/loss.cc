#include "src/nn/loss.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "src/util/check.h"

namespace oodgnn {
namespace {

float WeightAt(const std::vector<float>& weights, size_t i) {
  return weights.empty() ? 1.f : weights[i];
}

}  // namespace

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels,
                             const std::vector<float>& weights) {
  const int m = logits.rows();
  const int classes = logits.cols();
  OODGNN_CHECK_EQ(static_cast<int>(labels.size()), m);
  OODGNN_CHECK(weights.empty() || static_cast<int>(weights.size()) == m);
  OODGNN_CHECK_GT(m, 0);

  // Forward: compute softmax probabilities once and cache them for the
  // backward pass.
  auto probs = std::make_shared<Tensor>(m, classes);
  double total = 0.0;
  for (int r = 0; r < m; ++r) {
    OODGNN_DCHECK(labels[static_cast<size_t>(r)] >= 0 &&
                  labels[static_cast<size_t>(r)] < classes);
    const float* lrow = logits.value().row(r);
    float* prow = probs->row(r);
    float mx = -std::numeric_limits<float>::infinity();
    for (int c = 0; c < classes; ++c) mx = std::max(mx, lrow[c]);
    float denom = 0.f;
    for (int c = 0; c < classes; ++c) {
      prow[c] = std::exp(lrow[c] - mx);
      denom += prow[c];
    }
    for (int c = 0; c < classes; ++c) prow[c] /= denom;
    const float p_true =
        std::max(prow[labels[static_cast<size_t>(r)]], 1e-12f);
    total += -std::log(p_true) *
             WeightAt(weights, static_cast<size_t>(r));
  }
  Tensor out(1, 1, static_cast<float>(total / m));

  auto node = logits.node();
  auto labels_copy = std::make_shared<std::vector<int>>(labels);
  auto weights_copy = std::make_shared<std::vector<float>>(weights);
  return Variable::MakeOp(
      std::move(out), {node},
      [node, probs, labels_copy, weights_copy, m,
       classes](const VariableNode& self) {
        if (!node->requires_grad) return;
        const float g = self.grad[0] / static_cast<float>(m);
        for (int r = 0; r < m; ++r) {
          const float w =
              WeightAt(*weights_copy, static_cast<size_t>(r)) * g;
          const float* prow = probs->row(r);
          float* grow = node->grad.row(r);
          const int y = (*labels_copy)[static_cast<size_t>(r)];
          for (int c = 0; c < classes; ++c) {
            grow[c] += w * (prow[c] - (c == y ? 1.f : 0.f));
          }
        }
      });
}

Variable BceWithLogits(const Variable& logits, const Tensor& targets,
                       const Tensor& mask,
                       const std::vector<float>& weights) {
  const int m = logits.rows();
  const int tasks = logits.cols();
  OODGNN_CHECK(logits.value().SameShape(targets));
  OODGNN_CHECK(logits.value().SameShape(mask));
  OODGNN_CHECK(weights.empty() || static_cast<int>(weights.size()) == m);

  double total = 0.0;
  double count = 0.0;
  for (int r = 0; r < m; ++r) {
    const float w = WeightAt(weights, static_cast<size_t>(r));
    const float* x = logits.value().row(r);
    const float* y = targets.row(r);
    const float* mk = mask.row(r);
    for (int c = 0; c < tasks; ++c) {
      if (mk[c] == 0.f) continue;
      // Stable softplus-based BCE: max(x,0) - x*y + log1p(exp(-|x|)).
      const float loss = std::max(x[c], 0.f) - x[c] * y[c] +
                         std::log1p(std::exp(-std::fabs(x[c])));
      total += w * loss;
      count += 1.0;
    }
  }
  OODGNN_CHECK_GT(count, 0.0) << "BceWithLogits: mask selects no labels";
  Tensor out(1, 1, static_cast<float>(total / count));

  auto node = logits.node();
  auto targets_copy = std::make_shared<Tensor>(targets);
  auto mask_copy = std::make_shared<Tensor>(mask);
  auto weights_copy = std::make_shared<std::vector<float>>(weights);
  const float inv_count = static_cast<float>(1.0 / count);
  return Variable::MakeOp(
      std::move(out), {node},
      [node, targets_copy, mask_copy, weights_copy, inv_count, m,
       tasks](const VariableNode& self) {
        if (!node->requires_grad) return;
        const float g = self.grad[0] * inv_count;
        for (int r = 0; r < m; ++r) {
          const float w =
              WeightAt(*weights_copy, static_cast<size_t>(r)) * g;
          const float* x = node->value.row(r);
          const float* y = targets_copy->row(r);
          const float* mk = mask_copy->row(r);
          float* grow = node->grad.row(r);
          for (int c = 0; c < tasks; ++c) {
            if (mk[c] == 0.f) continue;
            const float sig = 1.f / (1.f + std::exp(-x[c]));
            grow[c] += w * (sig - y[c]);
          }
        }
      });
}

Variable MseLoss(const Variable& pred, const Tensor& targets,
                 const std::vector<float>& weights) {
  const int m = pred.rows();
  const int tasks = pred.cols();
  OODGNN_CHECK(pred.value().SameShape(targets));
  OODGNN_CHECK(weights.empty() || static_cast<int>(weights.size()) == m);
  OODGNN_CHECK_GT(m * tasks, 0);

  double total = 0.0;
  for (int r = 0; r < m; ++r) {
    const float w = WeightAt(weights, static_cast<size_t>(r));
    const float* p = pred.value().row(r);
    const float* t = targets.row(r);
    for (int c = 0; c < tasks; ++c) {
      const float diff = p[c] - t[c];
      total += w * diff * diff;
    }
  }
  Tensor out(1, 1, static_cast<float>(total / (m * tasks)));

  auto node = pred.node();
  auto targets_copy = std::make_shared<Tensor>(targets);
  auto weights_copy = std::make_shared<std::vector<float>>(weights);
  const float inv = 1.f / static_cast<float>(m * tasks);
  return Variable::MakeOp(
      std::move(out), {node},
      [node, targets_copy, weights_copy, inv, m,
       tasks](const VariableNode& self) {
        if (!node->requires_grad) return;
        const float g = self.grad[0] * inv;
        for (int r = 0; r < m; ++r) {
          const float w =
              WeightAt(*weights_copy, static_cast<size_t>(r)) * g;
          const float* p = node->value.row(r);
          const float* t = targets_copy->row(r);
          float* grow = node->grad.row(r);
          for (int c = 0; c < tasks; ++c) {
            grow[c] += 2.f * w * (p[c] - t[c]);
          }
        }
      });
}

}  // namespace oodgnn
