#ifndef OODGNN_NN_LINEAR_H_
#define OODGNN_NN_LINEAR_H_

#include "src/nn/module.h"
#include "src/tensor/variable.h"

namespace oodgnn {

class Rng;

/// Fully connected layer: y = x·W + b with W [in,out] (Glorot-uniform
/// init) and optional bias b [1,out] (zero init).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng* rng, bool bias = true);

  /// x: [m, in] -> [m, out].
  Variable Forward(const Variable& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Variable weight_;
  Variable bias_;  // Undefined when bias is disabled.
};

}  // namespace oodgnn

#endif  // OODGNN_NN_LINEAR_H_
