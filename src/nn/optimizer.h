#ifndef OODGNN_NN_OPTIMIZER_H_
#define OODGNN_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "src/tensor/variable.h"

namespace oodgnn {

/// Snapshot of an optimizer's internal slot state for checkpointing.
/// `slots` is a flat list of per-parameter moment tensors whose layout
/// is defined by the concrete optimizer (SGD: velocity; Adam: first
/// moments then second moments). Restoring into a differently shaped
/// optimizer fails rather than silently corrupting the run.
struct OptimizerState {
  int64_t step_count = 0;
  std::vector<Tensor> slots;
};

/// Base class for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on the
  /// parameters.
  virtual void Step() = 0;

  /// Clears parameter gradients (call between steps).
  void ZeroGrad();

  /// Copies the internal slot state (for checkpointing). Stateless
  /// optimizers return an empty state.
  virtual OptimizerState GetState() const { return {}; }

  /// Restores a state captured by GetState on an identically
  /// constructed optimizer. Returns false (without modifying anything)
  /// when the slot count or any slot shape disagrees.
  virtual bool SetState(const OptimizerState& state) {
    return state.slots.empty() && state.step_count == 0;
  }

  /// Changes the learning rate.
  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

 protected:
  std::vector<Variable> params_;
  float lr_ = 1e-3f;
};

/// Stochastic gradient descent with optional momentum and decoupled L2
/// weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.f,
      float weight_decay = 0.f);

  void Step() override;

  OptimizerState GetState() const override;
  bool SetState(const OptimizerState& state) override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam optimizer (Kingma & Ba, 2015) with bias correction and optional
/// L2 weight decay added to the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.f);

  void Step() override;

  OptimizerState GetState() const override;
  bool SetState(const OptimizerState& state) override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace oodgnn

#endif  // OODGNN_NN_OPTIMIZER_H_
