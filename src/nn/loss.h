#ifndef OODGNN_NN_LOSS_H_
#define OODGNN_NN_LOSS_H_

#include <vector>

#include "src/tensor/variable.h"

namespace oodgnn {

// Fused, numerically stable loss functions. Every loss supports
// per-sample weights (the `w_n` of Eq. 6 in the paper); an empty weight
// vector means uniform weights of 1. Sample weights are constants — no
// gradient flows into them (the paper alternates: weights are learned by
// the decorrelation objective, not the prediction loss).

/// Multi-class cross-entropy on raw logits [m,C] with integer labels in
/// [0,C). Returns (1/m)·Σ_i w_i·(−log softmax(logits_i)[y_i]) as a 1×1
/// Variable.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels,
                             const std::vector<float>& weights = {});

/// Multi-task binary cross-entropy on raw logits [m,T]. `targets` holds
/// 0/1 labels, `mask` is 1 where a label is present (OGB-style missing
/// labels) and 0 elsewhere. Mean over present entries of
/// w_i·[softplus(x) − y·x].
Variable BceWithLogits(const Variable& logits, const Tensor& targets,
                       const Tensor& mask,
                       const std::vector<float>& weights = {});

/// Mean squared error over all entries of pred [m,T]:
/// (1/(m·T))·Σ w_i·(pred − target)².
Variable MseLoss(const Variable& pred, const Tensor& targets,
                 const std::vector<float>& weights = {});

}  // namespace oodgnn

#endif  // OODGNN_NN_LOSS_H_
