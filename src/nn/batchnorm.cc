#include "src/nn/batchnorm.h"

#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

BatchNorm1d::BatchNorm1d(int num_features, float momentum, float eps)
    : num_features_(num_features),
      momentum_(momentum),
      eps_(eps),
      running_mean_(1, num_features),
      running_var_(1, num_features, 1.f) {
  gamma_ = RegisterParameter(Tensor(1, num_features, 1.f));
  beta_ = RegisterParameter(Tensor(1, num_features));
  RegisterBuffer(&running_mean_);
  RegisterBuffer(&running_var_);
}

Variable BatchNorm1d::Forward(const Variable& x, bool training) {
  OODGNN_CHECK_EQ(x.cols(), num_features_);
  Variable mean;
  Variable var;
  if (training && x.rows() > 1) {
    mean = MeanRows(x);
    Variable centered = AddRowVec(x, Scale(mean, -1.f));
    var = MeanRows(Square(centered));
    // Update running stats from the batch values (outside the graph).
    for (int c = 0; c < num_features_; ++c) {
      running_mean_.at(0, c) = (1.f - momentum_) * running_mean_.at(0, c) +
                               momentum_ * mean.value().at(0, c);
      running_var_.at(0, c) = (1.f - momentum_) * running_var_.at(0, c) +
                              momentum_ * var.value().at(0, c);
    }
    Variable std = SqrtOp(AddScalar(var, eps_));
    Variable normalized = DivRowVec(centered, std);
    return AddRowVec(MulRowVec(normalized, gamma_), beta_);
  }
  // Eval (or degenerate single-row batch): running statistics.
  mean = Variable::Constant(running_mean_);
  var = Variable::Constant(running_var_);
  Variable centered = AddRowVec(x, Scale(mean, -1.f));
  Variable std = SqrtOp(AddScalar(var, eps_));
  Variable normalized = DivRowVec(centered, std);
  return AddRowVec(MulRowVec(normalized, gamma_), beta_);
}

}  // namespace oodgnn
