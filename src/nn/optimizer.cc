#include "src/nn/optimizer.h"

#include <cmath>

#include "src/util/check.h"

namespace oodgnn {
namespace {

/// Shape-checked copy of checkpointed slot tensors into an optimizer's
/// live slots. Leaves `dst` untouched and returns false on mismatch.
bool RestoreSlots(const std::vector<Tensor>& src, std::vector<Tensor>* dst) {
  if (src.size() != dst->size()) return false;
  for (size_t i = 0; i < src.size(); ++i) {
    if (!src[i].SameShape((*dst)[i])) return false;
  }
  for (size_t i = 0; i < src.size(); ++i) (*dst)[i] = src[i];
  return true;
}

}  // namespace

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {
  for (const Variable& p : params_) {
    OODGNN_CHECK(p.defined() && p.requires_grad())
        << "optimizer parameters must be trainable leaves";
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (const Variable& p : params_) {
    velocity_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (p.grad().empty()) continue;  // Never touched by Backward.
    Tensor& value = p.mutable_value();
    const Tensor& grad = p.grad();
    Tensor& vel = velocity_[i];
    for (int j = 0; j < value.size(); ++j) {
      float g = grad[j] + weight_decay_ * value[j];
      vel[j] = momentum_ * vel[j] + g;
      value[j] -= lr_ * vel[j];
    }
  }
}

OptimizerState Sgd::GetState() const {
  OptimizerState state;
  state.slots = velocity_;
  return state;
}

bool Sgd::SetState(const OptimizerState& state) {
  if (state.step_count != 0) return false;
  return RestoreSlots(state.slots, &velocity_);
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (p.grad().empty()) continue;
    Tensor& value = p.mutable_value();
    const Tensor& grad = p.grad();
    for (int j = 0; j < value.size(); ++j) {
      float g = grad[j] + weight_decay_ * value[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.f - beta2_) * g * g;
      const float m_hat = m_[i][j] / bias1;
      const float v_hat = v_[i][j] / bias2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

OptimizerState Adam::GetState() const {
  OptimizerState state;
  state.step_count = step_count_;
  state.slots.reserve(m_.size() + v_.size());
  state.slots.insert(state.slots.end(), m_.begin(), m_.end());
  state.slots.insert(state.slots.end(), v_.begin(), v_.end());
  return state;
}

bool Adam::SetState(const OptimizerState& state) {
  if (state.step_count < 0 || state.slots.size() != m_.size() + v_.size()) {
    return false;
  }
  std::vector<Tensor> m(state.slots.begin(),
                        state.slots.begin() + static_cast<long>(m_.size()));
  std::vector<Tensor> v(state.slots.begin() + static_cast<long>(m_.size()),
                        state.slots.end());
  std::vector<Tensor> m_backup = m_;
  if (!RestoreSlots(m, &m_)) return false;
  if (!RestoreSlots(v, &v_)) {
    m_ = std::move(m_backup);
    return false;
  }
  step_count_ = state.step_count;
  return true;
}

}  // namespace oodgnn
