#ifndef OODGNN_NN_INIT_H_
#define OODGNN_NN_INIT_H_

#include "src/tensor/tensor.h"

namespace oodgnn {

class Rng;

/// Glorot/Xavier uniform initialization: U[-a, a] with
/// a = sqrt(6 / (fan_in + fan_out)). Shape [fan_in, fan_out].
Tensor GlorotUniform(int fan_in, int fan_out, Rng* rng);

/// He/Kaiming normal initialization: N(0, sqrt(2 / fan_in)). Shape
/// [fan_in, fan_out]; suited to ReLU networks.
Tensor HeNormal(int fan_in, int fan_out, Rng* rng);

}  // namespace oodgnn

#endif  // OODGNN_NN_INIT_H_
