#ifndef OODGNN_NN_SERIALIZE_H_
#define OODGNN_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "src/tensor/variable.h"

namespace oodgnn {

class Module;

/// Writes the parameter tensors to a binary checkpoint file (magic,
/// version, per-tensor shape + row-major float32 payload). Parameter
/// order is the module's registration order, so a checkpoint can only
/// be restored into an identically constructed module. Returns false on
/// I/O failure.
bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters);
bool SaveParameters(const std::string& path, const Module& module);

/// Restores parameter values from a checkpoint written by
/// SaveParameters. The parameter count and every shape must match;
/// aborts on a structural mismatch, returns false on I/O failure or a
/// malformed file.
bool LoadParameters(const std::string& path,
                    std::vector<Variable> parameters);
bool LoadParameters(const std::string& path, Module* module);

}  // namespace oodgnn

#endif  // OODGNN_NN_SERIALIZE_H_
