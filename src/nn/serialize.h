#ifndef OODGNN_NN_SERIALIZE_H_
#define OODGNN_NN_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/tensor/variable.h"

namespace oodgnn {

class Module;

/// FNV-1a 64-bit checksum, used to detect checkpoint corruption.
uint64_t Fnv1a64(const void* data, size_t size);

/// Appends fixed-width little-endian scalars and length-prefixed
/// containers to an in-memory payload. The byte layout is mirrored by
/// BinaryPayloadReader; checkpoint files are a small framed header
/// (magic, version, payload size, checksum) around one payload.
class BinaryPayloadWriter {
 public:
  void PutU8(uint8_t value) { Append(&value, sizeof(value)); }
  void PutU32(uint32_t value) { Append(&value, sizeof(value)); }
  void PutU64(uint64_t value) { Append(&value, sizeof(value)); }
  void PutI64(int64_t value) { Append(&value, sizeof(value)); }
  void PutF32(float value) { Append(&value, sizeof(value)); }
  void PutF64(double value) { Append(&value, sizeof(value)); }

  /// u64 length followed by the raw bytes.
  void PutString(const std::string& value);

  /// u32 rows, u32 cols, then rows*cols raw float32 values.
  void PutTensor(const Tensor& value);

  /// u64 count followed by the raw elements.
  void PutF32Vector(const std::vector<float>& values);
  void PutF64Vector(const std::vector<double>& values);
  void PutU64Vector(const std::vector<uint64_t>& values);
  void PutI8Vector(const std::vector<int8_t>& values);

  const std::string& payload() const { return payload_; }

 private:
  void Append(const void* data, size_t size);

  std::string payload_;
};

/// Bounds-checked reader over an untrusted byte buffer. Every getter
/// returns false once the buffer is exhausted, and every
/// length-prefixed read validates the declared count against the bytes
/// actually remaining *before* allocating, so hostile headers cannot
/// trigger huge allocations or out-of-bounds reads.
class BinaryPayloadReader {
 public:
  BinaryPayloadReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  bool GetU8(uint8_t* value) { return Fetch(value, sizeof(*value)); }
  bool GetU32(uint32_t* value) { return Fetch(value, sizeof(*value)); }
  bool GetU64(uint64_t* value) { return Fetch(value, sizeof(*value)); }
  bool GetI64(int64_t* value) { return Fetch(value, sizeof(*value)); }
  bool GetF32(float* value) { return Fetch(value, sizeof(*value)); }
  bool GetF64(double* value) { return Fetch(value, sizeof(*value)); }

  bool GetString(std::string* value);
  bool GetTensor(Tensor* value);
  bool GetF32Vector(std::vector<float>* values);
  bool GetF64Vector(std::vector<double>* values);
  bool GetU64Vector(std::vector<uint64_t>* values);
  bool GetI8Vector(std::vector<int8_t>* values);

  size_t remaining() const { return size_ - pos_; }

  /// True once every payload byte has been consumed — trailing garbage
  /// marks a malformed file.
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool Fetch(void* out, size_t size);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Writes the parameter tensors to a binary checkpoint file (magic,
/// version, per-tensor shape + row-major float32 payload). Parameter
/// order is the module's registration order, so a checkpoint can only
/// be restored into an identically constructed module. Returns false on
/// I/O failure.
bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters);
bool SaveParameters(const std::string& path, const Module& module);

/// Restores parameter values from a checkpoint written by
/// SaveParameters. The header-declared tensor count and every shape are
/// validated against both the file's actual size and the module's
/// expectations before anything is allocated or overwritten; any
/// mismatch, truncation, or malformed byte returns false with a logged
/// reason (never aborts, OOMs, or partially applies the file).
bool LoadParameters(const std::string& path,
                    std::vector<Variable> parameters);
bool LoadParameters(const std::string& path, Module* module);

/// Writes a complete forward-pass snapshot of a module: trainable
/// parameters AND non-trainable buffers (batch-norm running
/// statistics), both in registration order, framed with a magic,
/// version, payload size and FNV-1a checksum. This is the serving
/// format: unlike SaveParameters it captures everything an eval-mode
/// forward reads, so an InferenceEngine restored from it reproduces
/// the training process's eval outputs bitwise. Returns false on I/O
/// failure.
bool SaveModelState(const std::string& path, const Module& module);

/// Restores a snapshot written by SaveModelState into an identically
/// constructed module. Hardened like LoadParameters: the checksum,
/// every declared count and every shape are validated against the
/// actual bytes and the module before anything is mutated; any
/// mismatch returns false with a logged reason and leaves the module
/// untouched.
bool LoadModelState(const std::string& path, Module* module);

/// Writes a quantized forward-pass snapshot ("OODQ" framing, same
/// magic/version/size/checksum envelope as SaveModelState): matrix
/// parameters (rows > 1 and cols > 1) are stored as Q8_0 blocks
/// (src/tensor/quant.h) — per-param u8 tag, shape, int8 codes and
/// per-block fp32 scales — while vector/scalar params and all buffers
/// stay raw fp32. Roughly 4× smaller than OODM for weight-heavy
/// models. Returns false on I/O failure.
bool SaveQuantizedModelState(const std::string& path, const Module& module);

/// Restores a snapshot written by SaveQuantizedModelState, hardened
/// like LoadModelState (checksum, counts, shapes, code/scale lengths
/// all validated before anything is mutated; corrupt or truncated
/// files are rejected whole). Quantized entries are dequantized into
/// the module, so the module afterwards holds exactly the fp32 image a
/// quantized serving engine computes with.
bool LoadQuantizedModelState(const std::string& path, Module* module);

/// Sniffs the file magic and dispatches to LoadModelState (OODM) or
/// LoadQuantizedModelState (OODQ) — the engine's LoadModelFile accepts
/// either format through this.
bool LoadAnyModelState(const std::string& path, Module* module);

}  // namespace oodgnn

#endif  // OODGNN_NN_SERIALIZE_H_
