#ifndef OODGNN_NN_MLP_H_
#define OODGNN_NN_MLP_H_

#include <memory>
#include <vector>

#include "src/nn/batchnorm.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace oodgnn {

class Rng;

/// Multi-layer perceptron: Linear (+BatchNorm) +ReLU blocks followed by
/// a final Linear with no activation. `dims` lists layer widths, e.g.
/// {64, 128, 10} builds 64→128 (ReLU) →10.
class Mlp : public Module {
 public:
  /// Constructs from layer widths. Requires dims.size() >= 2.
  Mlp(const std::vector<int>& dims, Rng* rng, bool batch_norm = false);

  /// x: [m, dims.front()] -> [m, dims.back()].
  Variable Forward(const Variable& x, bool training);

  int in_features() const { return dims_.front(); }
  int out_features() const { return dims_.back(); }

 private:
  std::vector<int> dims_;
  std::vector<std::unique_ptr<Linear>> layers_;
  std::vector<std::unique_ptr<BatchNorm1d>> norms_;  // Empty if disabled.
};

}  // namespace oodgnn

#endif  // OODGNN_NN_MLP_H_
