#include "src/nn/module.h"

#include "src/util/check.h"

namespace oodgnn {

std::vector<Variable> Module::Parameters() const {
  std::vector<Variable> all = params_;
  for (const Module* child : children_) {
    std::vector<Variable> sub = child->Parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

std::vector<Tensor*> Module::Buffers() const {
  std::vector<Tensor*> all = buffers_;
  for (const Module* child : children_) {
    std::vector<Tensor*> sub = child->Buffers();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

void Module::ZeroGrad() {
  for (Variable param : Parameters()) param.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Variable& param : Parameters()) total += param.value().size();
  return total;
}

Variable Module::RegisterParameter(Tensor init) {
  Variable param = Variable::Param(std::move(init));
  params_.push_back(param);
  return param;
}

void Module::RegisterBuffer(Tensor* buffer) {
  OODGNN_CHECK(buffer != nullptr);
  buffers_.push_back(buffer);
}

void Module::RegisterModule(Module* child) {
  OODGNN_CHECK(child != nullptr);
  children_.push_back(child);
}

}  // namespace oodgnn
