#include "src/graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <map>

#include "src/util/check.h"

namespace oodgnn {
namespace {

/// Sorted, deduplicated undirected adjacency lists (self loops
/// dropped).
std::vector<std::vector<int>> UndirectedAdjacency(const Graph& graph) {
  std::vector<std::vector<int>> adj(
      static_cast<size_t>(graph.num_nodes()));
  for (size_t e = 0; e < graph.edge_src.size(); ++e) {
    const int u = graph.edge_src[e];
    const int v = graph.edge_dst[e];
    if (u == v) continue;
    adj[static_cast<size_t>(u)].push_back(v);
    adj[static_cast<size_t>(v)].push_back(u);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // splitmix64-style mixing.
  value += 0x9e3779b97f4a7c15ULL + seed;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
  return value ^ (value >> 31);
}

}  // namespace

std::vector<int> BfsDistances(const Graph& graph, int source) {
  OODGNN_CHECK(source >= 0 && source < graph.num_nodes());
  std::vector<std::vector<int>> adj = UndirectedAdjacency(graph);
  std::vector<int> dist(static_cast<size_t>(graph.num_nodes()), -1);
  std::deque<int> queue = {source};
  dist[static_cast<size_t>(source)] = 0;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : adj[static_cast<size_t>(u)]) {
      if (dist[static_cast<size_t>(v)] < 0) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

int Diameter(const Graph& graph) {
  if (graph.num_nodes() < 2) return 0;
  int diameter = 0;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    std::vector<int> dist = BfsDistances(graph, v);
    for (int d : dist) {
      if (d < 0) return -1;  // Disconnected.
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

double ClusteringCoefficient(const Graph& graph) {
  std::vector<std::vector<int>> adj = UndirectedAdjacency(graph);
  int64_t triples = 0;
  for (const auto& neighbors : adj) {
    const int64_t degree = static_cast<int64_t>(neighbors.size());
    triples += degree * (degree - 1) / 2;
  }
  if (triples == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(graph)) /
         static_cast<double>(triples);
}

std::vector<int> DegreeHistogram(const Graph& graph) {
  std::vector<std::vector<int>> adj = UndirectedAdjacency(graph);
  size_t max_degree = 0;
  for (const auto& neighbors : adj) {
    max_degree = std::max(max_degree, neighbors.size());
  }
  std::vector<int> histogram(max_degree + 1, 0);
  for (const auto& neighbors : adj) ++histogram[neighbors.size()];
  return histogram;
}

uint64_t WeisfeilerLehmanHash(const Graph& graph, int iterations,
                              bool use_features) {
  const int n = graph.num_nodes();
  if (n == 0) return 0;
  std::vector<std::vector<int>> adj = UndirectedAdjacency(graph);

  // Initial colors: degree, optionally refined by the feature argmax.
  std::vector<uint64_t> color(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    uint64_t c = adj[static_cast<size_t>(v)].size();
    if (use_features && graph.feature_dim() > 0) {
      const float* row = graph.x.row(v);
      const int arg = static_cast<int>(
          std::max_element(row, row + graph.feature_dim()) - row);
      c = HashCombine(c, static_cast<uint64_t>(arg));
    }
    color[static_cast<size_t>(v)] = c;
  }

  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<uint64_t> next(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) {
      std::vector<uint64_t> neighborhood;
      neighborhood.reserve(adj[static_cast<size_t>(v)].size());
      for (int u : adj[static_cast<size_t>(v)]) {
        neighborhood.push_back(color[static_cast<size_t>(u)]);
      }
      std::sort(neighborhood.begin(), neighborhood.end());
      uint64_t c = HashCombine(0x5151, color[static_cast<size_t>(v)]);
      for (uint64_t nc : neighborhood) c = HashCombine(c, nc);
      next[static_cast<size_t>(v)] = c;
    }
    color = std::move(next);
  }

  // Order-independent summary: hash the sorted multiset of colors.
  std::sort(color.begin(), color.end());
  uint64_t result = HashCombine(0xABCD, static_cast<uint64_t>(n));
  for (uint64_t c : color) result = HashCombine(result, c);
  return result;
}

}  // namespace oodgnn
