#include "src/graph/batch.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/util/check.h"

namespace oodgnn {

void GraphBatch::FinalizePlans() {
  auto edge_plan = std::make_shared<MessagePlan>(
      MessagePlan::Build(edge_src, edge_dst, num_nodes));
  // The shared in-degree derivation: counts are the dst-plan offsets
  // diffs (previously recounted here, in Graph::InDegrees and in
  // InduceSubgraph).
  in_degree = edge_plan->by_dst.SegmentCounts();

  std::vector<int> aug_src = edge_src;
  std::vector<int> aug_dst = edge_dst;
  aug_src.reserve(aug_src.size() + static_cast<size_t>(num_nodes));
  aug_dst.reserve(aug_dst.size() + static_cast<size_t>(num_nodes));
  for (int v = 0; v < num_nodes; ++v) {
    aug_src.push_back(v);
    aug_dst.push_back(v);
  }
  self_loop_plan = std::make_shared<MessagePlan>(
      MessagePlan::Build(std::move(aug_src), std::move(aug_dst), num_nodes));

  node_plan = std::make_shared<SegmentPlan>(
      SegmentPlan::Build(node_graph, num_graphs));

  // GcnConv normalization, with the exact arithmetic of the previous
  // per-forward loops: inv-sqrt first, then products.
  std::vector<float> inv_sqrt_deg(static_cast<size_t>(num_nodes));
  std::vector<float> self_coeff(static_cast<size_t>(num_nodes));
  for (int v = 0; v < num_nodes; ++v) {
    const float s = 1.f / std::sqrt(static_cast<float>(
                              in_degree[static_cast<size_t>(v)] + 1));
    inv_sqrt_deg[static_cast<size_t>(v)] = s;
    self_coeff[static_cast<size_t>(v)] = s * s;
  }
  gcn_self_coeff =
      num_nodes > 0 ? Tensor::ColVector(self_coeff) : Tensor();
  if (!edge_src.empty()) {
    std::vector<float> edge_coeff(edge_src.size());
    for (size_t e = 0; e < edge_src.size(); ++e) {
      edge_coeff[e] = inv_sqrt_deg[static_cast<size_t>(edge_src[e])] *
                      inv_sqrt_deg[static_cast<size_t>(edge_dst[e])];
    }
    gcn_edge_coeff = Tensor::ColVector(edge_coeff);
  } else {
    gcn_edge_coeff = Tensor();
  }

  plan = std::move(edge_plan);
}

bool GraphBatch::has_plans() const {
  return plan != nullptr && self_loop_plan != nullptr &&
         node_plan != nullptr && plan->num_rows == num_nodes &&
         plan->num_edges() == static_cast<int>(edge_src.size()) &&
         self_loop_plan->num_edges() ==
             static_cast<int>(edge_src.size()) + num_nodes &&
         node_plan->num_segments == num_graphs &&
         node_plan->num_items() == static_cast<int>(node_graph.size());
}

GraphBatch GraphBatch::FromGraphs(const std::vector<const Graph*>& graphs) {
  OODGNN_CHECK(!graphs.empty());
  GraphBatch batch;
  batch.num_graphs = static_cast<int>(graphs.size());

  const int feature_dim = graphs[0]->feature_dim();
  const int num_targets = static_cast<int>(graphs[0]->targets.size());
  int total_nodes = 0;
  int total_edges = 0;
  for (const Graph* g : graphs) {
    OODGNN_CHECK(g != nullptr);
    OODGNN_CHECK_EQ(g->feature_dim(), feature_dim);
    OODGNN_CHECK_EQ(static_cast<int>(g->targets.size()), num_targets);
    total_nodes += g->num_nodes();
    total_edges += g->num_edges();
  }
  batch.num_nodes = total_nodes;
  batch.features = Tensor(total_nodes, feature_dim);
  batch.edge_src.reserve(static_cast<size_t>(total_edges));
  batch.edge_dst.reserve(static_cast<size_t>(total_edges));
  batch.node_graph.resize(static_cast<size_t>(total_nodes));
  batch.class_labels.reserve(graphs.size());
  if (num_targets > 0) {
    batch.targets = Tensor(batch.num_graphs, num_targets);
    batch.target_mask = Tensor(batch.num_graphs, num_targets, 1.f);
  }

  int node_offset = 0;
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = *graphs[gi];
    for (int v = 0; v < g.num_nodes(); ++v) {
      const float* src = g.x.row(v);
      std::copy(src, src + feature_dim, batch.features.row(node_offset + v));
      batch.node_graph[static_cast<size_t>(node_offset + v)] =
          static_cast<int>(gi);
    }
    for (int e = 0; e < g.num_edges(); ++e) {
      batch.edge_src.push_back(g.edge_src[static_cast<size_t>(e)] +
                               node_offset);
      batch.edge_dst.push_back(g.edge_dst[static_cast<size_t>(e)] +
                               node_offset);
    }
    batch.class_labels.push_back(g.label);
    if (num_targets > 0) {
      for (int t = 0; t < num_targets; ++t) {
        batch.targets.at(static_cast<int>(gi), t) =
            g.targets[static_cast<size_t>(t)];
        if (!g.target_mask.empty()) {
          batch.target_mask.at(static_cast<int>(gi), t) =
              g.target_mask[static_cast<size_t>(t)];
        }
      }
    }
    node_offset += g.num_nodes();
  }

  batch.FinalizePlans();
  return batch;
}

GraphBatch MakeBatch(const std::vector<Graph>& dataset_graphs,
                     const std::vector<size_t>& indices, size_t begin,
                     size_t end) {
  OODGNN_CHECK(begin < end && end <= indices.size());
  std::vector<const Graph*> ptrs;
  ptrs.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    OODGNN_CHECK_LT(indices[i], dataset_graphs.size());
    ptrs.push_back(&dataset_graphs[indices[i]]);
  }
  return GraphBatch::FromGraphs(ptrs);
}

}  // namespace oodgnn
