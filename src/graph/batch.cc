#include "src/graph/batch.h"

#include <algorithm>

#include "src/util/check.h"

namespace oodgnn {

GraphBatch GraphBatch::FromGraphs(const std::vector<const Graph*>& graphs) {
  OODGNN_CHECK(!graphs.empty());
  GraphBatch batch;
  batch.num_graphs = static_cast<int>(graphs.size());

  const int feature_dim = graphs[0]->feature_dim();
  const int num_targets = static_cast<int>(graphs[0]->targets.size());
  int total_nodes = 0;
  int total_edges = 0;
  for (const Graph* g : graphs) {
    OODGNN_CHECK(g != nullptr);
    OODGNN_CHECK_EQ(g->feature_dim(), feature_dim);
    OODGNN_CHECK_EQ(static_cast<int>(g->targets.size()), num_targets);
    total_nodes += g->num_nodes();
    total_edges += g->num_edges();
  }
  batch.num_nodes = total_nodes;
  batch.features = Tensor(total_nodes, feature_dim);
  batch.edge_src.reserve(static_cast<size_t>(total_edges));
  batch.edge_dst.reserve(static_cast<size_t>(total_edges));
  batch.node_graph.resize(static_cast<size_t>(total_nodes));
  batch.class_labels.reserve(graphs.size());
  if (num_targets > 0) {
    batch.targets = Tensor(batch.num_graphs, num_targets);
    batch.target_mask = Tensor(batch.num_graphs, num_targets, 1.f);
  }

  int node_offset = 0;
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = *graphs[gi];
    for (int v = 0; v < g.num_nodes(); ++v) {
      const float* src = g.x.row(v);
      std::copy(src, src + feature_dim, batch.features.row(node_offset + v));
      batch.node_graph[static_cast<size_t>(node_offset + v)] =
          static_cast<int>(gi);
    }
    for (int e = 0; e < g.num_edges(); ++e) {
      batch.edge_src.push_back(g.edge_src[static_cast<size_t>(e)] +
                               node_offset);
      batch.edge_dst.push_back(g.edge_dst[static_cast<size_t>(e)] +
                               node_offset);
    }
    batch.class_labels.push_back(g.label);
    if (num_targets > 0) {
      for (int t = 0; t < num_targets; ++t) {
        batch.targets.at(static_cast<int>(gi), t) =
            g.targets[static_cast<size_t>(t)];
        if (!g.target_mask.empty()) {
          batch.target_mask.at(static_cast<int>(gi), t) =
              g.target_mask[static_cast<size_t>(t)];
        }
      }
    }
    node_offset += g.num_nodes();
  }

  batch.in_degree.assign(static_cast<size_t>(total_nodes), 0);
  for (int v : batch.edge_dst) ++batch.in_degree[static_cast<size_t>(v)];
  return batch;
}

GraphBatch MakeBatch(const std::vector<Graph>& dataset_graphs,
                     const std::vector<size_t>& indices, size_t begin,
                     size_t end) {
  OODGNN_CHECK(begin < end && end <= indices.size());
  std::vector<const Graph*> ptrs;
  ptrs.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    OODGNN_CHECK_LT(indices[i], dataset_graphs.size());
    ptrs.push_back(&dataset_graphs[indices[i]]);
  }
  return GraphBatch::FromGraphs(ptrs);
}

}  // namespace oodgnn
