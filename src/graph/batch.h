#ifndef OODGNN_GRAPH_BATCH_H_
#define OODGNN_GRAPH_BATCH_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/segment_plan.h"
#include "src/tensor/tensor.h"

namespace oodgnn {

/// Disjoint union of several graphs, with node indices offset so a
/// single message-passing pass processes the whole mini-batch (the
/// PyTorch-Geometric batching convention).
struct GraphBatch {
  int num_graphs = 0;
  int num_nodes = 0;

  /// Stacked node features, [num_nodes, F].
  Tensor features;

  /// Global (offset) directed edge endpoints.
  std::vector<int> edge_src;
  std::vector<int> edge_dst;

  /// node_graph[v] = index of the graph node v belongs to.
  std::vector<int> node_graph;

  /// In-degree per node (incoming directed edges), cached for
  /// normalization terms.
  std::vector<int> in_degree;

  /// Class labels, one per graph (multi-class tasks; −1 if unused).
  std::vector<int> class_labels;

  /// Stacked multi-task targets and presence masks, [num_graphs, T].
  /// Empty tensors when the task has no vector targets.
  Tensor targets;
  Tensor target_mask;

  // --- precomputed message-passing plans (DESIGN.md §12) ---
  //
  // Built by FinalizePlans() (called by FromGraphs and InduceSubgraph)
  // and reused by every conv layer, epoch, and both autograd
  // directions. shared_ptr because autograd closures capture them and
  // the tape can outlive the batch (pooled topologies). A batch whose
  // edge/node vectors are mutated after construction must call
  // FinalizePlans() again; convs fall back to the unplanned ops when
  // has_plans() is false.

  /// CSR twin plans over edge_src/edge_dst.
  std::shared_ptr<const MessagePlan> plan;

  /// Plans over the self-loop-augmented edge list (edges in original
  /// order, then one self-loop per node) — the topology GatConv
  /// attends over.
  std::shared_ptr<const MessagePlan> self_loop_plan;

  /// Plan over node_graph (segments = graphs) for readout/virtual-node
  /// pooling.
  std::shared_ptr<const SegmentPlan> node_plan;

  /// GcnConv normalization coefficients, precomputed once per batch:
  /// self path 1/(d_v+1) as [num_nodes, 1], edge path
  /// 1/√(d_src+1)·√(d_dst+1) as [num_edges, 1] (empty when edgeless).
  Tensor gcn_self_coeff;
  Tensor gcn_edge_coeff;

  /// (Re)builds plan/self_loop_plan/node_plan, derives in_degree from
  /// the dst-sorted plan offsets, and precomputes the GCN coefficient
  /// vectors. Must be called again after any mutation of
  /// edge_src/edge_dst/node_graph.
  void FinalizePlans();

  /// True when the cached plans are size-consistent with the current
  /// edge/node vectors (staleness after in-place index rewrites cannot
  /// be detected — rebuild via FinalizePlans()).
  bool has_plans() const;

  /// Builds a batch from graph pointers. All graphs must share the same
  /// feature width and target arity.
  static GraphBatch FromGraphs(const std::vector<const Graph*>& graphs);
};

/// Convenience: batches `dataset_graphs[indices[i]]` for i in
/// [begin, end).
GraphBatch MakeBatch(const std::vector<Graph>& dataset_graphs,
                     const std::vector<size_t>& indices, size_t begin,
                     size_t end);

}  // namespace oodgnn

#endif  // OODGNN_GRAPH_BATCH_H_
