#ifndef OODGNN_GRAPH_BATCH_H_
#define OODGNN_GRAPH_BATCH_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace oodgnn {

/// Disjoint union of several graphs, with node indices offset so a
/// single message-passing pass processes the whole mini-batch (the
/// PyTorch-Geometric batching convention).
struct GraphBatch {
  int num_graphs = 0;
  int num_nodes = 0;

  /// Stacked node features, [num_nodes, F].
  Tensor features;

  /// Global (offset) directed edge endpoints.
  std::vector<int> edge_src;
  std::vector<int> edge_dst;

  /// node_graph[v] = index of the graph node v belongs to.
  std::vector<int> node_graph;

  /// In-degree per node (incoming directed edges), cached for
  /// normalization terms.
  std::vector<int> in_degree;

  /// Class labels, one per graph (multi-class tasks; −1 if unused).
  std::vector<int> class_labels;

  /// Stacked multi-task targets and presence masks, [num_graphs, T].
  /// Empty tensors when the task has no vector targets.
  Tensor targets;
  Tensor target_mask;

  /// Builds a batch from graph pointers. All graphs must share the same
  /// feature width and target arity.
  static GraphBatch FromGraphs(const std::vector<const Graph*>& graphs);
};

/// Convenience: batches `dataset_graphs[indices[i]]` for i in
/// [begin, end).
GraphBatch MakeBatch(const std::vector<Graph>& dataset_graphs,
                     const std::vector<size_t>& indices, size_t begin,
                     size_t end);

}  // namespace oodgnn

#endif  // OODGNN_GRAPH_BATCH_H_
