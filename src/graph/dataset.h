#ifndef OODGNN_GRAPH_DATASET_H_
#define OODGNN_GRAPH_DATASET_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace oodgnn {

/// What kind of graph-level prediction a dataset poses.
enum class TaskType {
  /// Single multi-class label per graph (uses Graph::label).
  kMulticlass,
  /// One or more binary tasks per graph, possibly with missing labels
  /// (uses Graph::targets / target_mask). Evaluated with ROC-AUC.
  kBinary,
  /// One or more real-valued targets per graph. Evaluated with RMSE.
  kRegression,
};

/// Returns a short human-readable name ("multiclass", ...).
const char* TaskTypeName(TaskType type);

/// A dataset of graphs plus its train/validation/test index split.
/// Some benchmarks carry a second OOD test split (e.g. MNIST-75SP has
/// Test(noise) and Test(color)).
struct GraphDataset {
  std::string name;
  TaskType task_type = TaskType::kMulticlass;
  /// Number of classes for kMulticlass; number of tasks otherwise.
  int num_tasks = 1;
  int feature_dim = 0;

  std::vector<Graph> graphs;

  std::vector<size_t> train_idx;
  std::vector<size_t> valid_idx;
  std::vector<size_t> test_idx;

  /// Optional second test split and its display name.
  std::vector<size_t> test2_idx;
  std::string test2_name;

  /// Output width the prediction head needs (classes or tasks).
  int OutputDim() const { return num_tasks; }

  /// Mean node/edge counts over all graphs (Table 1 statistics).
  double AverageNodes() const;
  double AverageEdges() const;

  /// Validates internal consistency (index ranges, disjoint splits,
  /// uniform feature width and target arity). Aborts on violation.
  void Validate() const;
};

}  // namespace oodgnn

#endif  // OODGNN_GRAPH_DATASET_H_
