#ifndef OODGNN_GRAPH_GRAPH_H_
#define OODGNN_GRAPH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace oodgnn {

/// A single attributed graph with graph-level labels. Passive data
/// carrier: fields are public and invariants (index ranges) are checked
/// by the functions that consume it.
///
/// Edges are directed; undirected graphs store both directions (use
/// AddUndirectedEdge). Message passing treats edge (u→v) as "u sends a
/// message to v".
struct Graph {
  Graph() = default;

  /// Creates a graph with `num_nodes` nodes and zero-initialized
  /// node features of width `feature_dim`.
  Graph(int num_nodes, int feature_dim) : x(num_nodes, feature_dim) {}

  /// Node features, [num_nodes, feature_dim].
  Tensor x;

  /// Directed edge endpoints (parallel arrays).
  std::vector<int> edge_src;
  std::vector<int> edge_dst;

  /// Class id for multi-class classification tasks (−1 if unused).
  int label = -1;

  /// Targets for multi-task binary classification (0/1 per task) or
  /// regression (real value per task). Empty if unused.
  std::vector<float> targets;

  /// 1 where the corresponding target is present, 0 where missing
  /// (OGB-style). Empty means all targets present.
  std::vector<float> target_mask;

  /// Scaffold identifier assigned by the molecule generator (−1 if not
  /// a molecule). Used by the scaffold split.
  int64_t scaffold_id = -1;

  int num_nodes() const { return x.rows(); }
  int num_edges() const { return static_cast<int>(edge_src.size()); }
  int feature_dim() const { return x.cols(); }

  /// Appends the directed edge u→v. Endpoints must be valid node ids.
  void AddEdge(int u, int v);

  /// Appends both u→v and v→u.
  void AddUndirectedEdge(int u, int v);

  /// In-degree of every node (number of incoming directed edges).
  std::vector<int> InDegrees() const;

  /// True if the directed edge u→v exists (linear scan; intended for
  /// tests and generators, not hot paths).
  bool HasEdge(int u, int v) const;
};

/// Exact triangle count (number of unordered node triples that are
/// pairwise adjacent). Treats the graph as undirected.
int64_t CountTriangles(const Graph& graph);

/// Number of connected components (undirected interpretation).
int NumConnectedComponents(const Graph& graph);

}  // namespace oodgnn

#endif  // OODGNN_GRAPH_GRAPH_H_
