#include "src/graph/graph.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "src/tensor/segment_plan.h"
#include "src/util/check.h"

namespace oodgnn {

void Graph::AddEdge(int u, int v) {
  OODGNN_CHECK(u >= 0 && u < num_nodes()) << "bad edge source " << u;
  OODGNN_CHECK(v >= 0 && v < num_nodes()) << "bad edge target " << v;
  edge_src.push_back(u);
  edge_dst.push_back(v);
}

void Graph::AddUndirectedEdge(int u, int v) {
  AddEdge(u, v);
  AddEdge(v, u);
}

std::vector<int> Graph::InDegrees() const {
  return SegmentPlan::Build(edge_dst, num_nodes()).SegmentCounts();
}

bool Graph::HasEdge(int u, int v) const {
  for (size_t i = 0; i < edge_src.size(); ++i) {
    if (edge_src[i] == u && edge_dst[i] == v) return true;
  }
  return false;
}

int64_t CountTriangles(const Graph& graph) {
  const int n = graph.num_nodes();
  // Build sorted, deduplicated undirected adjacency lists.
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (size_t i = 0; i < graph.edge_src.size(); ++i) {
    int u = graph.edge_src[i];
    int v = graph.edge_dst[i];
    if (u == v) continue;
    adj[static_cast<size_t>(u)].push_back(v);
    adj[static_cast<size_t>(v)].push_back(u);
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  // For each node, count edges among higher-indexed neighbor pairs.
  int64_t triangles = 0;
  for (int u = 0; u < n; ++u) {
    const auto& nu = adj[static_cast<size_t>(u)];
    for (size_t a = 0; a < nu.size(); ++a) {
      const int v = nu[a];
      if (v <= u) continue;
      const auto& nv = adj[static_cast<size_t>(v)];
      for (size_t b = a + 1; b < nu.size(); ++b) {
        const int w = nu[b];
        if (w <= v) continue;
        if (std::binary_search(nv.begin(), nv.end(), w)) ++triangles;
      }
    }
  }
  return triangles;
}

int NumConnectedComponents(const Graph& graph) {
  const int n = graph.num_nodes();
  std::vector<int> parent(static_cast<size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int a) {
    while (parent[static_cast<size_t>(a)] != a) {
      parent[static_cast<size_t>(a)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(a)])];
      a = parent[static_cast<size_t>(a)];
    }
    return a;
  };
  int components = n;
  for (size_t i = 0; i < graph.edge_src.size(); ++i) {
    int ra = find(graph.edge_src[i]);
    int rb = find(graph.edge_dst[i]);
    if (ra != rb) {
      parent[static_cast<size_t>(ra)] = rb;
      --components;
    }
  }
  return components;
}

}  // namespace oodgnn
