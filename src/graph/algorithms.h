#ifndef OODGNN_GRAPH_ALGORITHMS_H_
#define OODGNN_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace oodgnn {

/// BFS distances from `source` (undirected interpretation);
/// unreachable nodes get −1.
std::vector<int> BfsDistances(const Graph& graph, int source);

/// Longest shortest path over all node pairs (undirected). Returns 0
/// for graphs with < 2 nodes and −1 for disconnected graphs. O(V·E).
int Diameter(const Graph& graph);

/// Global clustering coefficient: 3·#triangles / #connected-triples.
/// Returns 0 when there are no triples.
double ClusteringCoefficient(const Graph& graph);

/// Histogram of undirected node degrees; index d holds the number of
/// nodes with degree d (ignoring duplicate parallel edges).
std::vector<int> DegreeHistogram(const Graph& graph);

/// 1-Weisfeiler-Lehman color-refinement hash after `iterations`
/// rounds, seeded from (optionally) the node features' argmax. Two
/// isomorphic graphs always collide; most non-isomorphic graphs do not
/// (exactly the expressiveness ceiling of GIN discussed in the paper's
/// related work). Node features are used iff use_features is true.
uint64_t WeisfeilerLehmanHash(const Graph& graph, int iterations = 3,
                              bool use_features = false);

}  // namespace oodgnn

#endif  // OODGNN_GRAPH_ALGORITHMS_H_
