#include "src/graph/dataset.h"

#include <set>

#include "src/util/check.h"

namespace oodgnn {

const char* TaskTypeName(TaskType type) {
  switch (type) {
    case TaskType::kMulticlass:
      return "multiclass";
    case TaskType::kBinary:
      return "binary";
    case TaskType::kRegression:
      return "regression";
  }
  return "?";
}

double GraphDataset::AverageNodes() const {
  if (graphs.empty()) return 0.0;
  double total = 0.0;
  for (const Graph& g : graphs) total += g.num_nodes();
  return total / static_cast<double>(graphs.size());
}

double GraphDataset::AverageEdges() const {
  if (graphs.empty()) return 0.0;
  double total = 0.0;
  // Report undirected edge count (paper convention): directed/2.
  for (const Graph& g : graphs) total += g.num_edges() / 2.0;
  return total / static_cast<double>(graphs.size());
}

void GraphDataset::Validate() const {
  OODGNN_CHECK(!graphs.empty()) << name << ": empty dataset";
  std::set<size_t> seen;
  auto check_split = [&](const std::vector<size_t>& split,
                         const char* which) {
    for (size_t idx : split) {
      OODGNN_CHECK_LT(idx, graphs.size())
          << name << ": out-of-range index in " << which;
      OODGNN_CHECK(seen.insert(idx).second)
          << name << ": index " << idx << " appears in multiple splits";
    }
  };
  check_split(train_idx, "train");
  check_split(valid_idx, "valid");
  check_split(test_idx, "test");
  // test2 may alias the same underlying graphs conceptually but must be
  // distinct indices (the generators materialize perturbed copies).
  check_split(test2_idx, "test2");

  for (const Graph& g : graphs) {
    OODGNN_CHECK_EQ(g.feature_dim(), feature_dim) << name;
    if (task_type == TaskType::kMulticlass) {
      OODGNN_CHECK(g.label >= 0 && g.label < num_tasks)
          << name << ": label " << g.label << " outside [0," << num_tasks
          << ")";
    } else {
      OODGNN_CHECK_EQ(static_cast<int>(g.targets.size()), num_tasks) << name;
      OODGNN_CHECK(g.target_mask.empty() ||
                   g.target_mask.size() == g.targets.size())
          << name;
    }
    for (size_t e = 0; e < g.edge_src.size(); ++e) {
      OODGNN_CHECK(g.edge_src[e] >= 0 && g.edge_src[e] < g.num_nodes());
      OODGNN_CHECK(g.edge_dst[e] >= 0 && g.edge_dst[e] < g.num_nodes());
    }
  }
}

}  // namespace oodgnn
