#ifndef OODGNN_OBS_EXPORTER_H_
#define OODGNN_OBS_EXPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/metrics.h"

namespace oodgnn {
namespace obs {

/// Renders a snapshot in the Prometheus text exposition format.
/// Metric names swap '/' for '_' and gain an "oodgnn_" prefix
/// ("serve/e2e/us" → "oodgnn_serve_e2e_us"); counters and gauges emit
/// one sample each, histograms emit a summary: quantile-labelled
/// samples for p50/p95/p99 plus _sum, _count, _min and _max series.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Writes one JSON object — MetricsSnapshot::ToJson plus a "ts_us"
/// wall-clock timestamp — to `path` atomically (tmp + rename). Returns
/// false on I/O failure. Backs the --metrics-json at-exit dump; the
/// exporter's JSONL stream appends the same objects line by line.
bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry);

struct ExporterOptions {
  /// Output basename: the exporter overwrites <prefix>.prom on every
  /// tick (Prometheus scrape target) and appends one JSON line per
  /// tick to <prefix>.jsonl (offline timeline).
  std::string output_prefix;
  int interval_ms = 1000;
  /// Registry to snapshot; null means MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
};

/// Background metrics publisher. A single thread wakes every
/// `interval_ms`, snapshots the registry, rewrites the .prom file
/// atomically and appends to the .jsonl stream. Stop() (and the
/// destructor) wake the thread immediately and flush one final export
/// so short-lived processes never lose their last interval.
class MetricsExporter {
 public:
  explicit MetricsExporter(const ExporterOptions& options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Synchronously exports one snapshot (also called by the background
  /// thread; safe to call concurrently with it).
  void ExportNow();

  /// Stops the background thread after one final export. Idempotent.
  void Stop();

  /// Completed exports (both periodic and explicit).
  std::int64_t exports() const;

 private:
  void Loop();

  const ExporterOptions options_;
  MetricsRegistry* const registry_;  // resolved, never null

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // guarded by mu_

  mutable std::mutex write_mu_;  // serializes file writes across callers
  std::int64_t exports_ = 0;     // guarded by write_mu_

  std::thread thread_;
};

/// Process-wide exporter used by the --metrics-out flag and the
/// OODGNN_METRICS_OUT environment variable. Starting while one is
/// already running restarts it with the new options; Stop flushes and
/// joins. An atexit hook stops the exporter on normal process exit.
void StartGlobalExporter(const std::string& output_prefix, int interval_ms);
void StopGlobalExporter();

/// Schedules one WriteMetricsJson(path, Global()) dump at process exit
/// — the uniform --metrics-json behavior shared by every bench/table
/// binary. A later call replaces the destination; the dump runs once.
void RegisterMetricsJsonDumpAtExit(const std::string& path);

}  // namespace obs
}  // namespace oodgnn

#endif  // OODGNN_OBS_EXPORTER_H_
