#ifndef OODGNN_OBS_JOURNAL_H_
#define OODGNN_OBS_JOURNAL_H_

#include <cstdio>
#include <mutex>
#include <string>

namespace oodgnn {
namespace obs {

/// Append-only JSONL run journal: one self-contained JSON object per
/// line, flushed per write so a crashed run keeps every completed
/// record. Writers pass finished objects (see JsonObjectWriter);
/// records are distinguished by their "event" field by convention
/// ("epoch", "run_summary", "profile", …).
class RunJournal {
 public:
  /// Opens `path` for writing, truncating any previous journal. ok()
  /// reports whether the open succeeded; writes to a failed journal
  /// are dropped.
  explicit RunJournal(std::string path);
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends `json_object` plus a newline. Thread-safe.
  void WriteLine(const std::string& json_object);

 private:
  std::string path_;
  std::mutex mu_;
  std::FILE* file_;  // guarded by mu_
};

/// The process-wide journal configured via --trace-json (or the
/// OODGNN_TRACE_JSON environment variable, read on first access).
/// Returns nullptr while journaling is off — instrumented code guards
/// on that, so an unjournaled run allocates and formats nothing.
RunJournal* GlobalJournal();

/// Opens (replacing any previous) the global journal at `path`; an
/// empty path closes it.
void OpenGlobalJournal(const std::string& path);
void CloseGlobalJournal();

}  // namespace obs
}  // namespace oodgnn

#endif  // OODGNN_OBS_JOURNAL_H_
