#include "src/obs/span.h"

#include "src/util/check.h"

namespace oodgnn {
namespace obs {

SpanCollector::SpanCollector(MetricsRegistry* registry) {
  OODGNN_CHECK(registry != nullptr);
  requests_total_ = &registry->GetCounter("serve/requests/total");
  batches_total_ = &registry->GetCounter("serve/batches/total");
  graphs_total_ = &registry->GetCounter("serve/graphs/total");
  queue_depth_ = &registry->GetGauge("serve/queue/depth");
  inflight_batches_ = &registry->GetGauge("serve/inflight/batches");
  queue_wait_us_ = &registry->GetHistogram("serve/queue_wait/us");
  batch_build_us_ = &registry->GetHistogram("serve/batch_build/us");
  execute_us_ = &registry->GetHistogram("serve/execute/us");
  e2e_us_ = &registry->GetHistogram("serve/e2e/us");
  batch_graphs_ = &registry->GetHistogram("serve/batch/graphs");
  batch_nodes_ = &registry->GetHistogram("serve/batch/nodes");
  plan_arena_bytes_ = &registry->GetGauge("serve/plan/arena_bytes");
  plan_slots_ = &registry->GetGauge("serve/plan/slots");
  plan_reuse_x1000_ = &registry->GetGauge("serve/plan/reuse_x1000");
  plan_peak_bytes_ = &registry->GetGauge("serve/plan/peak_bytes");
  plan_recompiles_ = &registry->GetCounter("serve/plan/recompiles");
  plan_eager_batches_ = &registry->GetCounter("serve/plan/eager_batches");
  plan_diverged_batches_ =
      &registry->GetCounter("serve/plan/diverged_batches");
  plan_fallback_allocs_ = &registry->GetCounter("serve/plan/fallback_allocs");
}

void SpanCollector::RecordEnqueue(std::int64_t queue_depth) {
  requests_total_->Increment();
  queue_depth_->Set(static_cast<double>(queue_depth));
}

void SpanCollector::RecordQueueDepth(std::int64_t queue_depth) {
  queue_depth_->Set(static_cast<double>(queue_depth));
}

void SpanCollector::RecordBatchBegin() {
  const std::int64_t inflight =
      inflight_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  inflight_batches_->Set(static_cast<double>(inflight));
}

void SpanCollector::RecordBatchEnd(std::int64_t graphs, std::int64_t nodes) {
  batches_total_->Increment();
  graphs_total_->Add(graphs);
  batch_graphs_->Observe(static_cast<double>(graphs));
  batch_nodes_->Observe(static_cast<double>(nodes));
  const std::int64_t inflight =
      inflight_count_.fetch_sub(1, std::memory_order_relaxed) - 1;
  inflight_batches_->Set(static_cast<double>(inflight));
}

void SpanCollector::RecordSpan(const RequestSpan& span) {
  queue_wait_us_->Observe(static_cast<double>(span.queue_wait_us()));
  batch_build_us_->Observe(static_cast<double>(span.batch_build_us()));
  execute_us_->Observe(static_cast<double>(span.execute_dur_us()));
  e2e_us_->Observe(static_cast<double>(span.e2e_us()));
}

void SpanCollector::RecordPlanCompile(std::int64_t arena_bytes,
                                      std::int64_t slots, double reuse_ratio) {
  plan_arena_bytes_->Set(static_cast<double>(arena_bytes));
  plan_slots_->Set(static_cast<double>(slots));
  plan_reuse_x1000_->Set(1000.0 * reuse_ratio);
  plan_recompiles_->Increment();
}

void SpanCollector::RecordReplay(std::int64_t peak_bytes, bool diverged,
                                 std::int64_t fallback_allocs) {
  plan_peak_bytes_->Set(static_cast<double>(peak_bytes));
  if (diverged) plan_diverged_batches_->Increment();
  if (fallback_allocs > 0) plan_fallback_allocs_->Add(fallback_allocs);
}

void SpanCollector::RecordEagerBatch() { plan_eager_batches_->Increment(); }

}  // namespace obs
}  // namespace oodgnn
