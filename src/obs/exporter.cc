#include "src/obs/exporter.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <utility>

#include "src/obs/json.h"
#include "src/util/check.h"
#include "src/util/file.h"
#include "src/util/logging.h"

namespace oodgnn {
namespace obs {
namespace {

/// Prometheus metric name: '/' and any other illegal character become
/// '_', with an "oodgnn_" namespace prefix.
std::string PrometheusName(const std::string& name) {
  std::string out = "oodgnn_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendSample(std::string* out, const std::string& name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(name);
  out->push_back(' ');
  out->append(buf);
  out->push_back('\n');
}

/// Microseconds since the Unix epoch (wall clock — exporter timestamps
/// must be meaningful across processes, unlike the monotonic NowMicros).
std::int64_t WallClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string SnapshotJsonLine(const MetricsSnapshot& snapshot) {
  return JsonObjectWriter()
      .Put("ts_us", WallClockMicros())
      .PutRaw("metrics", snapshot.ToJson())
      .Build();
}

/// Writes `content` to `path` via a temporary file and rename, so a
/// concurrent reader (Prometheus scraping the file) never sees a
/// partial write.
bool WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  if (!WriteStringToFile(tmp, content)) return false;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out.append("# TYPE " + prom + " counter\n");
    AppendSample(&out, prom, static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out.append("# TYPE " + prom + " gauge\n");
    AppendSample(&out, prom, value);
  }
  for (const auto& [name, s] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out.append("# TYPE " + prom + " summary\n");
    AppendSample(&out, prom + "{quantile=\"0.5\"}", s.p50);
    AppendSample(&out, prom + "{quantile=\"0.95\"}", s.p95);
    AppendSample(&out, prom + "{quantile=\"0.99\"}", s.p99);
    AppendSample(&out, prom + "_sum", s.sum);
    AppendSample(&out, prom + "_count", static_cast<double>(s.count));
    out.append("# TYPE " + prom + "_min gauge\n");
    AppendSample(&out, prom + "_min", s.min);
    out.append("# TYPE " + prom + "_max gauge\n");
    AppendSample(&out, prom + "_max", s.max);
  }
  return out;
}

bool WriteMetricsJson(const std::string& path,
                      const MetricsRegistry& registry) {
  return WriteFileAtomic(path, SnapshotJsonLine(registry.GetSnapshot()) + "\n");
}

MetricsExporter::MetricsExporter(const ExporterOptions& options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &MetricsRegistry::Global()) {
  OODGNN_CHECK(!options_.output_prefix.empty())
      << "MetricsExporter requires a non-empty output_prefix";
  OODGNN_CHECK_GE(options_.interval_ms, 1);
  thread_ = std::thread([this] { Loop(); });
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::ExportNow() {
  const MetricsSnapshot snapshot = registry_->GetSnapshot();
  const std::string prom_text = ToPrometheusText(snapshot);
  const std::string json_line = SnapshotJsonLine(snapshot);
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!WriteFileAtomic(options_.output_prefix + ".prom", prom_text)) {
    OODGNN_LOG_EVERY_N(Warning, 60)
        << "metrics exporter: cannot write " << options_.output_prefix
        << ".prom";
  }
  std::ofstream jsonl(options_.output_prefix + ".jsonl", std::ios::app);
  if (jsonl) {
    jsonl << json_line << "\n";
  } else {
    OODGNN_LOG_EVERY_N(Warning, 60)
        << "metrics exporter: cannot append to " << options_.output_prefix
        << ".jsonl";
  }
  ++exports_;
}

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_requested_ && !thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::int64_t MetricsExporter::exports() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return exports_;
}

void MetricsExporter::Loop() {
  bool stopping = false;
  while (!stopping) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(options_.interval_ms);
      cv_.wait_until(lock, deadline, [this] { return stop_requested_; });
      stopping = stop_requested_;
    }
    ExportNow();  // on stop this is the final flush
  }
}

namespace {

std::mutex global_exporter_mu;
std::unique_ptr<MetricsExporter>& GlobalExporterSlot() {
  static std::unique_ptr<MetricsExporter>* slot =
      new std::unique_ptr<MetricsExporter>();
  return *slot;
}

}  // namespace

void StartGlobalExporter(const std::string& output_prefix, int interval_ms) {
  std::lock_guard<std::mutex> lock(global_exporter_mu);
  auto& slot = GlobalExporterSlot();
  slot.reset();  // stop + flush any previous exporter first
  ExporterOptions options;
  options.output_prefix = output_prefix;
  options.interval_ms = interval_ms;
  slot = std::make_unique<MetricsExporter>(options);
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit([] { StopGlobalExporter(); });
  }
  OODGNN_LOG(Info) << "metrics exporter: writing " << output_prefix
                   << ".prom / .jsonl every " << interval_ms << " ms";
}

void StopGlobalExporter() {
  std::lock_guard<std::mutex> lock(global_exporter_mu);
  GlobalExporterSlot().reset();
}

namespace {

/// atexit takes a capture-free function pointer, so the --metrics-json
/// destination lives in this (leaked, exit-safe) slot.
std::string& MetricsJsonPath() {
  static std::string* path = new std::string();
  return *path;
}

void DumpMetricsJsonAtExit() {
  if (!WriteMetricsJson(MetricsJsonPath(), MetricsRegistry::Global())) {
    OODGNN_LOG(Warning) << "--metrics-json: cannot write "
                        << MetricsJsonPath();
  }
}

}  // namespace

void RegisterMetricsJsonDumpAtExit(const std::string& path) {
  MetricsJsonPath() = path;
  static std::once_flag once;
  std::call_once(once, [] { std::atexit(DumpMetricsJsonAtExit); });
}

}  // namespace obs
}  // namespace oodgnn
