#include "src/obs/journal.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "src/util/logging.h"

namespace oodgnn {
namespace obs {
namespace {

std::mutex g_journal_mu;
std::unique_ptr<RunJournal> g_journal;       // guarded by g_journal_mu
std::atomic<bool> g_journal_open{false};     // fast-path mirror
bool g_env_checked = false;                  // guarded by g_journal_mu

/// Installs `journal` (may be null) as the global instance.
void InstallJournal(std::unique_ptr<RunJournal> journal) {
  std::lock_guard<std::mutex> lock(g_journal_mu);
  g_env_checked = true;
  g_journal = std::move(journal);
  g_journal_open.store(g_journal != nullptr, std::memory_order_release);
}

}  // namespace

RunJournal::RunJournal(std::string path)
    : path_(std::move(path)), file_(std::fopen(path_.c_str(), "w")) {
  if (file_ == nullptr) {
    OODGNN_LOG(Warning) << "cannot open run journal '" << path_
                        << "'; journal records will be dropped";
  }
}

RunJournal::~RunJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void RunJournal::WriteLine(const std::string& json_object) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(json_object.data(), 1, json_object.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

RunJournal* GlobalJournal() {
  if (!g_journal_open.load(std::memory_order_acquire)) {
    // Lazily honor OODGNN_TRACE_JSON so library users (tests, custom
    // binaries) get a journal without going through BenchOptions.
    std::lock_guard<std::mutex> lock(g_journal_mu);
    if (!g_env_checked) {
      g_env_checked = true;
      const char* env = std::getenv("OODGNN_TRACE_JSON");
      if (env != nullptr && *env != '\0') {
        g_journal = std::make_unique<RunJournal>(env);
        g_journal_open.store(true, std::memory_order_release);
      }
    }
    if (!g_journal_open.load(std::memory_order_relaxed)) return nullptr;
  }
  std::lock_guard<std::mutex> lock(g_journal_mu);
  return g_journal.get();
}

void OpenGlobalJournal(const std::string& path) {
  if (path.empty()) {
    CloseGlobalJournal();
    return;
  }
  InstallJournal(std::make_unique<RunJournal>(path));
}

void CloseGlobalJournal() { InstallJournal(nullptr); }

}  // namespace obs
}  // namespace oodgnn
