#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "src/obs/json.h"
#include "src/util/check.h"
#include "src/util/table.h"

namespace oodgnn {
namespace obs {
namespace {

/// Magnitude bucket of `v` (see StreamingHistogram::kNumBuckets doc).
int BucketOf(double v) {
  const double mag = std::fabs(v);
  if (mag == 0.0 || !std::isfinite(mag)) return 0;
  int exp = 0;
  std::frexp(mag, &exp);  // mag = f·2^exp with f in [0.5, 1)
  const int bucket = exp + StreamingHistogram::kZeroBucket;
  if (bucket < 0) return 0;
  if (bucket >= StreamingHistogram::kNumBuckets) {
    return StreamingHistogram::kNumBuckets - 1;
  }
  return bucket;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void StreamingHistogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (summary_.count == 0) {
    summary_.min = v;
    summary_.max = v;
  } else {
    if (v < summary_.min) summary_.min = v;
    if (v > summary_.max) summary_.max = v;
  }
  ++summary_.count;
  summary_.sum += v;
  ++buckets_[BucketOf(v)];
}

StreamingHistogram::Summary StreamingHistogram::GetSummary() const {
  std::lock_guard<std::mutex> lock(mu_);
  Summary summary = summary_;
  summary.p50 = QuantileLocked(0.50);
  summary.p95 = QuantileLocked(0.95);
  summary.p99 = QuantileLocked(0.99);
  return summary;
}

double StreamingHistogram::QuantileLocked(double q) const {
  if (summary_.count == 0) return 0.0;
  const double target = q * static_cast<double>(summary_.count);
  std::int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (static_cast<double>(seen) >= target) {
      if (b == 0) return 0.0;
      return std::ldexp(1.0, b - kZeroBucket);  // upper bucket edge
    }
  }
  return summary_.max;
}

double StreamingHistogram::ApproxQuantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return QuantileLocked(q);
}

void StreamingHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  summary_ = Summary();
  for (std::int64_t& b : buckets_) b = 0;
}

std::string MetricsSnapshot::ToTableString() const {
  ResultTable table({"Metric", "Kind", "Value", "Count", "Mean", "Min", "Max"});
  for (const auto& [name, value] : counters) {
    table.AddRow({name, "counter", std::to_string(value), "", "", "", ""});
  }
  for (const auto& [name, value] : gauges) {
    table.AddRow({name, "gauge", FormatDouble(value), "", "", "", ""});
  }
  for (const auto& [name, s] : histograms) {
    table.AddRow({name, "histogram", FormatDouble(s.sum),
                  std::to_string(s.count), FormatDouble(s.mean()),
                  FormatDouble(s.min), FormatDouble(s.max)});
  }
  return table.ToString();
}

std::string MetricsSnapshot::ToJson() const {
  JsonObjectWriter counters_json;
  for (const auto& [name, value] : counters) counters_json.Put(name, value);
  JsonObjectWriter gauges_json;
  for (const auto& [name, value] : gauges) gauges_json.Put(name, value);
  JsonObjectWriter histograms_json;
  for (const auto& [name, s] : histograms) {
    histograms_json.PutRaw(name, JsonObjectWriter()
                                     .Put("count", s.count)
                                     .Put("sum", s.sum)
                                     .Put("min", s.min)
                                     .Put("max", s.max)
                                     .Put("p50", s.p50)
                                     .Put("p95", s.p95)
                                     .Put("p99", s.p99)
                                     .Build());
  }
  return JsonObjectWriter()
      .PutRaw("counters", counters_json.Build())
      .PutRaw("gauges", gauges_json.Build())
      .PutRaw("histograms", histograms_json.Build())
      .Build();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  OODGNN_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  OODGNN_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

StreamingHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  OODGNN_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<StreamingHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->GetSummary());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace obs
}  // namespace oodgnn
