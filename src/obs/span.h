#ifndef OODGNN_OBS_SPAN_H_
#define OODGNN_OBS_SPAN_H_

#include <atomic>
#include <cstdint>

#include "src/obs/metrics.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace obs {

/// Wall-clock phase timestamps of one serving request, stamped as the
/// request moves through the engine:
///
///   enqueue_us   Submit() pushed the request onto the queue
///   admit_us     a worker popped it into a micro-batch
///   execute_us   the micro-batch tensors were built; forward starts
///   done_us      the caller's future was fulfilled
///
/// All stamps come from the engine's injected Clock (util/clock.h) —
/// the real monotonic clock in production, so spans are directly
/// comparable to the tracer's and the journal's timestamps, or a
/// FakeClock in tests for deterministic deadline/latency behavior. The struct is plain data with no ownership: the engine
/// embeds one per queued request (no extra heap), and Submit can
/// optionally mirror the finished span into caller-owned storage for
/// exact client-side percentile computation (the load generator does).
struct RequestSpan {
  std::int64_t request_id = 0;  ///< Monotonically increasing per engine.
  std::int64_t enqueue_us = 0;
  std::int64_t admit_us = 0;
  std::int64_t execute_us = 0;
  std::int64_t done_us = 0;

  /// Weight version that served the request (0 for requests that were
  /// shed before reaching a worker). Tags every span with the rollout
  /// state it observed, so a staggered weight swap is attributable
  /// span-by-span.
  std::int64_t model_version = 0;
  /// Absolute deadline the request carried (0 = none).
  std::int64_t deadline_us = 0;

  // Derived phase durations (valid once done_us is stamped).
  std::int64_t queue_wait_us() const { return admit_us - enqueue_us; }
  std::int64_t batch_build_us() const { return execute_us - admit_us; }
  std::int64_t execute_dur_us() const { return done_us - execute_us; }
  std::int64_t e2e_us() const { return done_us - enqueue_us; }
};

/// Pre-resolved metric handles for the serving path's request-span
/// accounting. All registry lookups (string keys, map nodes) happen
/// once at construction; afterwards every Record* call touches only
/// relaxed atomics and the per-histogram mutex — no strings, no maps,
/// and no heap, so telemetry can stay on in the zero-allocation
/// compiled serving path (the existing tensor-heap counters pin that).
///
/// Metric names follow the area/object/unit convention
/// (scripts/check_metric_names.sh):
///
///   counter    serve/requests/total      graphs submitted
///   counter    serve/batches/total       micro-batches executed
///   counter    serve/graphs/total        graphs executed (== requests)
///   gauge      serve/queue/depth         queued requests right now
///   gauge      serve/inflight/batches    batches executing right now
///   histogram  serve/queue_wait/us       enqueue -> batch-admit
///   histogram  serve/batch_build/us      batch-admit -> tensors built
///   histogram  serve/execute/us          tensors built -> future set
///   histogram  serve/e2e/us              enqueue -> future set
///   histogram  serve/batch/graphs        micro-batch occupancy
///   histogram  serve/batch/nodes         total nodes per micro-batch
///   gauge      serve/plan/arena_bytes    compiled-plan arena capacity
///   gauge      serve/plan/slots          compiled-plan slot count
///   gauge      serve/plan/reuse_x1000    liveness reuse ratio x1000
///   gauge      serve/plan/peak_bytes     last replay's peak footprint
///   counter    serve/plan/recompiles     plan compiles (construct+sync)
///   counter    serve/plan/eager_batches  batches failing the pre-check
///   counter    serve/plan/diverged_batches
///   counter    serve/plan/fallback_allocs
///
/// Engines sharing one registry share these instances (their totals
/// accumulate jointly); hand each engine a private MetricsRegistry when
/// per-engine accounting matters (tests do).
class SpanCollector {
 public:
  /// Registers (or re-finds) the serve metrics in `registry`. The
  /// registry must outlive the collector.
  explicit SpanCollector(MetricsRegistry* registry);

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Fresh request id (1, 2, 3, … per collector).
  std::int64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// One request entered the queue; `queue_depth` is the depth after
  /// the push.
  void RecordEnqueue(std::int64_t queue_depth);

  /// A worker popped requests into a micro-batch; `queue_depth` is the
  /// depth after the pop.
  void RecordQueueDepth(std::int64_t queue_depth);

  /// Batch execution started / finished (drives the in-flight gauge
  /// and the occupancy histograms).
  void RecordBatchBegin();
  void RecordBatchEnd(std::int64_t graphs, std::int64_t nodes);

  /// A finished request span: feeds the four per-phase histograms.
  void RecordSpan(const RequestSpan& span);

  // Compiled-plan accounting (mirrors InferenceStats into the registry
  // so exporters see it).
  void RecordPlanCompile(std::int64_t arena_bytes, std::int64_t slots,
                         double reuse_ratio);
  void RecordReplay(std::int64_t peak_bytes, bool diverged,
                    std::int64_t fallback_allocs);
  void RecordEagerBatch();

  /// Live gauge values (for InferenceStats snapshots).
  double queue_depth() const { return queue_depth_->value(); }
  double inflight_batches() const { return inflight_batches_->value(); }

  /// Histogram handles (for InferenceStats phase summaries).
  const StreamingHistogram& queue_wait() const { return *queue_wait_us_; }
  const StreamingHistogram& batch_build() const { return *batch_build_us_; }
  const StreamingHistogram& execute() const { return *execute_us_; }
  const StreamingHistogram& e2e() const { return *e2e_us_; }
  const StreamingHistogram& batch_graphs() const { return *batch_graphs_; }

 private:
  std::atomic<std::int64_t> next_request_id_{0};
  std::atomic<std::int64_t> inflight_count_{0};

  Counter* requests_total_;
  Counter* batches_total_;
  Counter* graphs_total_;
  Gauge* queue_depth_;
  Gauge* inflight_batches_;
  StreamingHistogram* queue_wait_us_;
  StreamingHistogram* batch_build_us_;
  StreamingHistogram* execute_us_;
  StreamingHistogram* e2e_us_;
  StreamingHistogram* batch_graphs_;
  StreamingHistogram* batch_nodes_;
  Gauge* plan_arena_bytes_;
  Gauge* plan_slots_;
  Gauge* plan_reuse_x1000_;
  Gauge* plan_peak_bytes_;
  Counter* plan_recompiles_;
  Counter* plan_eager_batches_;
  Counter* plan_diverged_batches_;
  Counter* plan_fallback_allocs_;
};

}  // namespace obs
}  // namespace oodgnn

#endif  // OODGNN_OBS_SPAN_H_
