#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/util/table.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace obs {
namespace {

std::atomic<int> g_profiling{-1};  // -1 = read OODGNN_PROFILE on first use

bool ProfilingFromEnv() {
  const char* env = std::getenv("OODGNN_PROFILE");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// One span currently open on a thread.
struct OpenSpan {
  const char* name;
  std::int64_t start_us;
  std::int64_t child_us;  // time already spent in closed nested spans
};

/// Per-thread trace state. The owning thread touches `stack` without
/// locking (it is the only writer); `agg` is written by the owner and
/// read by snapshots, so it takes `mu`. The global registry holds a
/// shared_ptr, keeping aggregates alive after the thread exits.
struct ThreadState {
  std::mutex mu;
  std::unordered_map<const char*, PhaseStats> agg;  // guarded by mu
  std::vector<OpenSpan> stack;                      // owner thread only
};

std::mutex g_registry_mu;
std::vector<std::shared_ptr<ThreadState>>& Registry() {
  static auto* registry = new std::vector<std::shared_ptr<ThreadState>>();
  return *registry;
}

ThreadState& LocalState() {
  thread_local std::shared_ptr<ThreadState> state = [] {
    auto s = std::make_shared<ThreadState>();
    std::lock_guard<std::mutex> lock(g_registry_mu);
    Registry().push_back(s);
    return s;
  }();
  return *state;
}

void MergeInto(PhaseStats* into, const PhaseStats& from) {
  if (into->count == 0) {
    into->min_us = from.min_us;
    into->max_us = from.max_us;
  } else if (from.count > 0) {
    into->min_us = std::min(into->min_us, from.min_us);
    into->max_us = std::max(into->max_us, from.max_us);
  }
  into->count += from.count;
  into->total_us += from.total_us;
  into->child_us += from.child_us;
}

}  // namespace

bool ProfilingEnabled() {
  int v = g_profiling.load(std::memory_order_relaxed);
  if (v < 0) {
    // A racing first read computes the same env answer twice — benign.
    v = ProfilingFromEnv() ? 1 : 0;
    g_profiling.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetProfilingEnabled(bool enabled) {
  g_profiling.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

TraceScope::TraceScope(const char* name) : active_(ProfilingEnabled()) {
  if (!active_) return;
  LocalState().stack.push_back({name, NowMicros(), 0});
}

TraceScope::~TraceScope() {
  if (!active_) return;
  ThreadState& state = LocalState();
  // The scope was opened with profiling on; a mid-span toggle could
  // leave the stack empty, so close defensively.
  if (state.stack.empty()) return;
  const OpenSpan span = state.stack.back();
  state.stack.pop_back();
  const std::int64_t elapsed_us = NowMicros() - span.start_us;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    PhaseStats& stats = state.agg[span.name];
    PhaseStats sample;
    sample.count = 1;
    sample.total_us = elapsed_us;
    sample.child_us = span.child_us;
    sample.min_us = elapsed_us;
    sample.max_us = elapsed_us;
    MergeInto(&stats, sample);
  }
  if (!state.stack.empty()) state.stack.back().child_us += elapsed_us;
}

std::vector<PhaseStats> TraceSnapshot() {
  std::map<std::string, PhaseStats> merged;
  {
    std::lock_guard<std::mutex> registry_lock(g_registry_mu);
    for (const auto& state : Registry()) {
      std::lock_guard<std::mutex> lock(state->mu);
      for (const auto& [name, stats] : state->agg) {
        MergeInto(&merged[name], stats);
      }
    }
  }
  std::vector<PhaseStats> result;
  result.reserve(merged.size());
  for (auto& [name, stats] : merged) {
    stats.name = name;
    result.push_back(stats);
  }
  std::sort(result.begin(), result.end(),
            [](const PhaseStats& a, const PhaseStats& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return result;
}

void ResetTrace() {
  std::lock_guard<std::mutex> registry_lock(g_registry_mu);
  for (const auto& state : Registry()) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->agg.clear();
  }
}

std::string RenderProfile(const std::vector<PhaseStats>& stats) {
  std::int64_t total_self_us = 0;
  for (const PhaseStats& s : stats) total_self_us += s.self_us();
  ResultTable table(
      {"Phase", "Calls", "Total ms", "Self ms", "% wall", "Avg us"});
  for (const PhaseStats& s : stats) {
    char total_ms[32], self_ms[32], pct[32], avg_us[32];
    std::snprintf(total_ms, sizeof(total_ms), "%.2f",
                  static_cast<double>(s.total_us) / 1e3);
    std::snprintf(self_ms, sizeof(self_ms), "%.2f",
                  static_cast<double>(s.self_us()) / 1e3);
    std::snprintf(pct, sizeof(pct), "%.1f",
                  total_self_us > 0 ? 100.0 * static_cast<double>(s.self_us()) /
                                          static_cast<double>(total_self_us)
                                    : 0.0);
    std::snprintf(avg_us, sizeof(avg_us), "%.1f",
                  s.count > 0 ? static_cast<double>(s.total_us) /
                                    static_cast<double>(s.count)
                              : 0.0);
    table.AddRow(
        {s.name, std::to_string(s.count), total_ms, self_ms, pct, avg_us});
  }
  return table.ToString();
}

std::string RenderProfile() { return RenderProfile(TraceSnapshot()); }

}  // namespace obs
}  // namespace oodgnn
