#include "src/obs/json.h"

#include <cmath>
#include <cstdio>

namespace oodgnn {
namespace obs {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips every double; integral values print without the
  // exponent noise of %e.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

void AppendKey(std::string* body, const std::string& key) {
  if (!body->empty()) body->push_back(',');
  *body += JsonQuote(key);
  body->push_back(':');
}

}  // namespace

JsonObjectWriter& JsonObjectWriter::Put(const std::string& key, double v) {
  AppendKey(&body_, key);
  body_ += JsonNumber(v);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Put(const std::string& key,
                                        std::int64_t v) {
  AppendKey(&body_, key);
  body_ += std::to_string(v);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Put(const std::string& key, int v) {
  return Put(key, static_cast<std::int64_t>(v));
}

JsonObjectWriter& JsonObjectWriter::Put(const std::string& key, bool v) {
  AppendKey(&body_, key);
  body_ += v ? "true" : "false";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Put(const std::string& key,
                                        const std::string& v) {
  AppendKey(&body_, key);
  body_ += JsonQuote(v);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Put(const std::string& key,
                                        const char* v) {
  return Put(key, std::string(v));
}

JsonObjectWriter& JsonObjectWriter::PutRaw(const std::string& key,
                                           const std::string& raw_json) {
  AppendKey(&body_, key);
  body_ += raw_json;
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Put(const std::string& key,
                                        const std::vector<double>& values) {
  AppendKey(&body_, key);
  body_.push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) body_.push_back(',');
    body_ += JsonNumber(values[i]);
  }
  body_.push_back(']');
  return *this;
}

std::string JsonObjectWriter::Build() const { return "{" + body_ + "}"; }

}  // namespace obs
}  // namespace oodgnn
