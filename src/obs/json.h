#ifndef OODGNN_OBS_JSON_H_
#define OODGNN_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace oodgnn {
namespace obs {

/// `s` as a JSON string literal, quotes included (control characters
/// and '"'/'\\' escaped).
std::string JsonQuote(const std::string& s);

/// `v` as a JSON number. NaN and ±infinity — which JSON cannot
/// represent — serialize as null.
std::string JsonNumber(double v);

/// Incrementally builds one JSON object, insertion-ordered. The
/// instrumentation layer emits only objects of scalars (plus nested
/// objects via PutRaw), so this covers the whole journal/metrics
/// surface without a DOM.
class JsonObjectWriter {
 public:
  JsonObjectWriter& Put(const std::string& key, double v);
  JsonObjectWriter& Put(const std::string& key, std::int64_t v);
  JsonObjectWriter& Put(const std::string& key, int v);
  JsonObjectWriter& Put(const std::string& key, bool v);
  JsonObjectWriter& Put(const std::string& key, const std::string& v);
  JsonObjectWriter& Put(const std::string& key, const char* v);
  /// Inserts `raw_json` verbatim as the value (must itself be valid
  /// JSON — typically a nested object or array).
  JsonObjectWriter& PutRaw(const std::string& key, const std::string& raw_json);
  JsonObjectWriter& Put(const std::string& key,
                        const std::vector<double>& values);

  /// The finished object, e.g. {"epoch":3,"loss":0.25}.
  std::string Build() const;

 private:
  std::string body_;
};

}  // namespace obs
}  // namespace oodgnn

#endif  // OODGNN_OBS_JSON_H_
