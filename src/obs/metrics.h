#ifndef OODGNN_OBS_METRICS_H_
#define OODGNN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace oodgnn {
namespace obs {

/// Monotonically increasing integer metric (dispatch counts, element
/// totals, accumulated microseconds). Relaxed atomics: counters are
/// telemetry, they never order other memory operations.
class Counter {
 public:
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins floating-point metric (current loss, learning rate).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming histogram: exact count/sum/min/max plus power-of-two
/// magnitude buckets for approximate quantiles. Bounded memory
/// regardless of how many values are observed.
class StreamingHistogram {
 public:
  /// Bucket b holds |v| in [2^(b-1-kZeroBucket), 2^(b-kZeroBucket));
  /// bucket 0 holds 0 (and anything below the smallest magnitude).
  static constexpr int kNumBuckets = 64;
  static constexpr int kZeroBucket = 32;

  struct Summary {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Bucket-approximated quantiles (upper bucket edges, exact within
    /// a factor of 2 — see ApproxQuantile), captured with the counts so
    /// snapshots and exporters see one consistent view.
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  void Observe(double v);
  Summary GetSummary() const;
  /// Upper edge of the bucket containing the q-quantile (q in [0, 1]);
  /// exact to within a factor of 2. Returns 0 with no observations.
  double ApproxQuantile(double q) const;
  void Reset();

 private:
  double QuantileLocked(double q) const;  // caller holds mu_

  mutable std::mutex mu_;
  Summary summary_;                              // guarded by mu_
  std::int64_t buckets_[kNumBuckets] = {0};      // guarded by mu_
};

/// Flat view of a registry at one instant, sorted by metric name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, StreamingHistogram::Summary>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Aligned ASCII table (name, kind, value/count/mean/min/max),
  /// rendered via util/table.
  std::string ToTableString() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{"count":..,"sum":..,"min":..,"max":..},...}}.
  std::string ToJson() const;
};

/// Named metric store. Lookup-or-create; returned references stay valid
/// for the registry's lifetime (metrics are never removed). A name
/// identifies exactly one kind — asking for "x" as both a counter and a
/// gauge aborts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the instrumentation layer writes to.
  /// Stays empty unless profiling is enabled (src/obs/trace.h) — the
  /// zero-overhead contract for uninstrumented runs.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  StreamingHistogram& GetHistogram(const std::string& name);

  MetricsSnapshot GetSnapshot() const;
  /// Zeroes every metric (entries stay registered).
  void Reset();
  /// Number of registered metrics of any kind.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<StreamingHistogram>> histograms_;
};

}  // namespace obs
}  // namespace oodgnn

#endif  // OODGNN_OBS_METRICS_H_
