#ifndef OODGNN_OBS_SLO_H_
#define OODGNN_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace oodgnn {
namespace obs {

/// Which request-span duration a latency objective is evaluated on.
enum class SloPhase { kE2e, kQueueWait, kExecute };

const char* SloPhaseName(SloPhase phase);

/// One declarative serving objective: "at most (1 - quantile) of
/// requests in any window may exceed threshold_us or fail". Stated as
/// a quantile target ("p99 end-to-end latency under 50 ms") but
/// evaluated in its equivalent budget form — a window breaches when
/// the fraction of violating requests exceeds the error budget
/// (1 - quantile), i.e. when the burn rate passes 1. Errored requests
/// always consume budget, whatever their latency.
struct SloSpec {
  /// Lowercase [a-z0-9_]+ tag used in metric names
  /// ("slo/<name>/burn_rate" etc.) and breach logs.
  std::string name = "e2e_p99";
  SloPhase phase = SloPhase::kE2e;
  double quantile = 0.99;        ///< In (0, 1); budget is 1 - quantile.
  double threshold_us = 100000;  ///< Latency objective at that quantile.
  int window = 512;              ///< Requests per evaluation window.
};

/// Lifetime accounting of one tracked objective (atomic snapshot; safe
/// to read while serving).
struct SloStatus {
  std::int64_t observed = 0;          ///< Requests observed.
  std::int64_t violations = 0;        ///< Over-threshold or errored.
  std::int64_t windows = 0;           ///< Complete windows evaluated.
  std::int64_t breached_windows = 0;  ///< Windows with burn rate > 1.
  double burn_rate = 0.0;             ///< Latest complete window's rate.
};

/// Sliding-window evaluator for one SloSpec. Observe() appends a
/// request outcome to a preallocated ring buffer; every `window`-th
/// observation closes a window, computes its burn rate
/// (violating fraction ÷ error budget), and updates the registry
/// gauges/counters. No allocation after construction; one mutex, no
/// contention beyond the engine's own request rate.
///
/// Registry metrics (pre-resolved at construction; null registry keeps
/// the tracker purely local):
///
///   gauge    slo/<name>/burn_rate        latest window's burn rate
///   gauge    slo/<name>/threshold_us     the configured objective
///   counter  slo/<name>/violations       lifetime violating requests
///   counter  slo/<name>/breached_windows lifetime breached windows
class SloTracker {
 public:
  /// Aborts on malformed specs (empty/illegal name, quantile outside
  /// (0, 1), window < 1).
  SloTracker(const SloSpec& spec, MetricsRegistry* registry);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Records one request. Returns true when this observation closed a
  /// window AND that window breached — the caller's hook for logging.
  bool Observe(double latency_us, bool error = false);

  SloStatus status() const;
  const SloSpec& spec() const { return spec_; }

 private:
  const SloSpec spec_;

  mutable std::mutex mu_;
  std::vector<unsigned char> ring_;  // guarded by mu_; 1 = violation
  int ring_pos_ = 0;                 // guarded by mu_
  SloStatus status_;                 // guarded by mu_
  std::int64_t window_violations_ = 0;  // guarded by mu_

  // Null when constructed without a registry.
  Gauge* burn_rate_gauge_ = nullptr;
  Counter* violations_counter_ = nullptr;
  Counter* breaches_counter_ = nullptr;
};

}  // namespace obs
}  // namespace oodgnn

#endif  // OODGNN_OBS_SLO_H_
