#ifndef OODGNN_OBS_SLO_H_
#define OODGNN_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/clock.h"

namespace oodgnn {
namespace obs {

/// Which request-span duration a latency objective is evaluated on.
enum class SloPhase { kE2e, kQueueWait, kExecute };

const char* SloPhaseName(SloPhase phase);

/// One declarative serving objective: "at most (1 - quantile) of
/// requests in any window may exceed threshold_us or fail". Stated as
/// a quantile target ("p99 end-to-end latency under 50 ms") but
/// evaluated in its equivalent budget form — a window breaches when
/// the fraction of violating requests exceeds the error budget
/// (1 - quantile), i.e. when the burn rate passes 1. Errored requests
/// always consume budget, whatever their latency.
struct SloSpec {
  /// Lowercase [a-z0-9_]+ tag used in metric names
  /// ("slo/<name>/burn_rate" etc.) and breach logs.
  std::string name = "e2e_p99";
  SloPhase phase = SloPhase::kE2e;
  double quantile = 0.99;        ///< In (0, 1); budget is 1 - quantile.
  double threshold_us = 100000;  ///< Latency objective at that quantile.
  int window = 512;              ///< Requests per evaluation window.

  /// Time-based sliding window: when nonzero, the burn rate is the
  /// violating share of the requests observed in the last `window_us`
  /// microseconds (instead of the last `window` requests), read off
  /// the tracker's injected Clock. Window completion is event-driven:
  /// every observation at least `window_us` after the current window's
  /// anchor closes it (counting one breach at most), so breach totals
  /// stay one-per-window just like count mode. Backward clock jumps
  /// are clamped to the last seen time.
  std::int64_t window_us = 0;
  /// Ring capacity in time mode: at most this many events are held;
  /// beyond it the oldest in-window event is evicted (the burn rate
  /// degrades gracefully to a suffix of the window). Ignored in count
  /// mode.
  int max_window_events = 4096;
};

/// Lifetime accounting of one tracked objective (atomic snapshot; safe
/// to read while serving).
struct SloStatus {
  std::int64_t observed = 0;          ///< Requests observed.
  std::int64_t violations = 0;        ///< Over-threshold or errored.
  std::int64_t windows = 0;           ///< Complete windows evaluated.
  std::int64_t breached_windows = 0;  ///< Windows with burn rate > 1.
  double burn_rate = 0.0;             ///< Latest complete window's rate.
};

/// Sliding-window evaluator for one SloSpec. Observe() appends a
/// request outcome to a preallocated ring buffer; every `window`-th
/// observation closes a window, computes its burn rate
/// (violating fraction ÷ error budget), and updates the registry
/// gauges/counters. No allocation after construction; one mutex, no
/// contention beyond the engine's own request rate.
///
/// Registry metrics (pre-resolved at construction; null registry keeps
/// the tracker purely local):
///
///   gauge    slo/<name>/burn_rate        latest window's burn rate
///   gauge    slo/<name>/threshold_us     the configured objective
///   counter  slo/<name>/violations       lifetime violating requests
///   counter  slo/<name>/breached_windows lifetime breached windows
class SloTracker {
 public:
  /// Aborts on malformed specs (empty/illegal name, quantile outside
  /// (0, 1), window < 1, or time mode with max_window_events < 1).
  /// `clock` drives time-mode windows; null selects Clock::Real().
  /// Count-mode trackers never read the clock.
  SloTracker(const SloSpec& spec, MetricsRegistry* registry,
             const Clock* clock = nullptr);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Records one request. Returns true when this observation closed a
  /// window AND that window breached — the caller's hook for logging.
  bool Observe(double latency_us, bool error = false);

  SloStatus status() const;
  const SloSpec& spec() const { return spec_; }

 private:
  /// One time-mode ring entry: clamped observation time + outcome.
  struct TimedEvent {
    std::int64_t t_us = 0;
    unsigned char violation = 0;
  };

  bool ObserveCountWindowLocked(bool violation);
  bool ObserveTimeWindowLocked(bool violation);

  const SloSpec spec_;
  const Clock* const clock_;  // never null

  mutable std::mutex mu_;
  std::vector<unsigned char> ring_;  // guarded by mu_; 1 = violation
  int ring_pos_ = 0;                 // guarded by mu_
  SloStatus status_;                 // guarded by mu_
  std::int64_t window_violations_ = 0;  // guarded by mu_

  // Time-mode state (all guarded by mu_): a circular buffer of the
  // events inside the sliding window, plus the running violation sum.
  std::vector<TimedEvent> events_;
  size_t events_head_ = 0;   ///< Index of the oldest event.
  size_t events_count_ = 0;  ///< Events currently in the ring.
  std::int64_t last_now_us_ = 0;       ///< Monotonic clamp.
  std::int64_t window_anchor_us_ = 0;  ///< Current window's start (0 = unset).

  // Null when constructed without a registry.
  Gauge* burn_rate_gauge_ = nullptr;
  Counter* violations_counter_ = nullptr;
  Counter* breaches_counter_ = nullptr;
};

}  // namespace obs
}  // namespace oodgnn

#endif  // OODGNN_OBS_SLO_H_
