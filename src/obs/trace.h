#ifndef OODGNN_OBS_TRACE_H_
#define OODGNN_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace oodgnn {
namespace obs {

/// True when instrumentation is active. Initialized once from the
/// OODGNN_PROFILE environment variable ("", "0" and unset mean off);
/// the --profile flag flips it via SetProfilingEnabled. When false,
/// every trace scope and kernel counter is a branch on one relaxed
/// atomic load — nothing is allocated, timed, or registered.
bool ProfilingEnabled();
void SetProfilingEnabled(bool enabled);

/// Aggregate statistics for one span label, merged across threads.
/// total_us is inclusive wall time; child_us the portion spent inside
/// nested spans, so self_us() is the phase's own cost.
struct PhaseStats {
  std::string name;
  std::int64_t count = 0;
  std::int64_t total_us = 0;
  std::int64_t child_us = 0;
  std::int64_t min_us = 0;
  std::int64_t max_us = 0;

  std::int64_t self_us() const { return total_us - child_us; }
};

/// Every phase observed so far, sorted by total time descending. Only
/// *closed* spans are aggregated; call between runs, not mid-span.
std::vector<PhaseStats> TraceSnapshot();

/// Discards all aggregated spans (open scopes on any thread are
/// unaffected and will aggregate when they close).
void ResetTrace();

/// Renders a profile table: phase, calls, total/self milliseconds, the
/// share of traced wall time (self ÷ Σ self), and mean microseconds.
std::string RenderProfile(const std::vector<PhaseStats>& stats);

/// RenderProfile(TraceSnapshot()).
std::string RenderProfile();

/// RAII span. Cheap no-op while profiling is disabled; otherwise
/// records wall time into a per-thread buffer (no locks on the hot
/// path beyond the thread's own aggregation mutex at close). Spans
/// nest: time inside an inner scope is attributed to the inner
/// phase's self time and to the outer phase's child time.
class TraceScope {
 public:
  /// `name` must outlive the program's tracing (string literals only).
  explicit TraceScope(const char* name);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_;
};

}  // namespace obs
}  // namespace oodgnn

#define OODGNN_TRACE_CONCAT_IMPL(a, b) a##b
#define OODGNN_TRACE_CONCAT(a, b) OODGNN_TRACE_CONCAT_IMPL(a, b)

/// Opens a trace span covering the rest of the enclosing block.
#define OODGNN_TRACE_SCOPE(name) \
  ::oodgnn::obs::TraceScope OODGNN_TRACE_CONCAT(oodgnn_trace_scope_, \
                                                __LINE__)(name)

#endif  // OODGNN_OBS_TRACE_H_
