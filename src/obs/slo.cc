#include "src/obs/slo.h"

#include "src/util/check.h"

namespace oodgnn {
namespace obs {
namespace {

bool ValidSloName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const char* SloPhaseName(SloPhase phase) {
  switch (phase) {
    case SloPhase::kE2e: return "e2e";
    case SloPhase::kQueueWait: return "queue_wait";
    case SloPhase::kExecute: return "execute";
  }
  return "unknown";
}

SloTracker::SloTracker(const SloSpec& spec, MetricsRegistry* registry,
                       const Clock* clock)
    : spec_(spec), clock_(clock != nullptr ? clock : Clock::Real()) {
  OODGNN_CHECK(ValidSloName(spec_.name))
      << "SLO name '" << spec_.name << "' must match [a-z0-9_]+";
  OODGNN_CHECK(spec_.quantile > 0.0 && spec_.quantile < 1.0)
      << "SLO '" << spec_.name << "': quantile must be in (0, 1)";
  OODGNN_CHECK_GE(spec_.window, 1);
  OODGNN_CHECK_GE(spec_.window_us, 0);
  if (spec_.window_us > 0) {
    OODGNN_CHECK_GE(spec_.max_window_events, 1);
    events_.assign(static_cast<size_t>(spec_.max_window_events), TimedEvent{});
  } else {
    ring_.assign(static_cast<size_t>(spec_.window), 0);
  }
  if (registry != nullptr) {
    const std::string prefix = "slo/" + spec_.name;
    burn_rate_gauge_ = &registry->GetGauge(prefix + "/burn_rate");
    violations_counter_ = &registry->GetCounter(prefix + "/violations");
    breaches_counter_ = &registry->GetCounter(prefix + "/breached_windows");
    registry->GetGauge(prefix + "/threshold_us").Set(spec_.threshold_us);
  }
}

bool SloTracker::Observe(double latency_us, bool error) {
  const bool violation = error || latency_us > spec_.threshold_us;
  bool breached = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++status_.observed;
    if (violation) ++status_.violations;
    breached = spec_.window_us > 0 ? ObserveTimeWindowLocked(violation)
                                   : ObserveCountWindowLocked(violation);
  }
  if (violation && violations_counter_ != nullptr) {
    violations_counter_->Increment();
  }
  return breached;
}

bool SloTracker::ObserveCountWindowLocked(bool violation) {
  bool breached = false;
  window_violations_ += ring_[static_cast<size_t>(ring_pos_)] == 0
                            ? (violation ? 1 : 0)
                            : (violation ? 0 : -1);
  ring_[static_cast<size_t>(ring_pos_)] = violation ? 1 : 0;
  ring_pos_ = (ring_pos_ + 1) % spec_.window;
  if (status_.observed >= spec_.window) {
    // The ring now holds the last `window` outcomes: the sliding
    // burn rate is its violating share over the error budget.
    const double share = static_cast<double>(window_violations_) /
                         static_cast<double>(spec_.window);
    status_.burn_rate = share / (1.0 - spec_.quantile);
    if (burn_rate_gauge_ != nullptr) {
      burn_rate_gauge_->Set(status_.burn_rate);
    }
    // Breaches are counted once per completed (non-overlapping)
    // window so a single bad stretch cannot inflate the counter by
    // its length.
    if (ring_pos_ == 0) {
      ++status_.windows;
      if (status_.burn_rate > 1.0) {
        ++status_.breached_windows;
        breached = true;
        if (breaches_counter_ != nullptr) breaches_counter_->Increment();
      }
    }
  }
  return breached;
}

bool SloTracker::ObserveTimeWindowLocked(bool violation) {
  // Clamp backward clock jumps: time-window arithmetic needs
  // non-decreasing stamps, and a fake/adjusted clock may step back.
  std::int64_t now = clock_->NowMicros();
  if (now < last_now_us_) now = last_now_us_;
  last_now_us_ = now;

  // Evict everything strictly older than the window (keep events with
  // t in (now - window_us, now]), then make room if the ring is full.
  const std::int64_t horizon = now - spec_.window_us;
  const size_t capacity = events_.size();
  while (events_count_ > 0 && events_[events_head_].t_us <= horizon) {
    window_violations_ -= events_[events_head_].violation;
    events_head_ = (events_head_ + 1) % capacity;
    --events_count_;
  }
  if (events_count_ == capacity) {
    window_violations_ -= events_[events_head_].violation;
    events_head_ = (events_head_ + 1) % capacity;
    --events_count_;
  }
  TimedEvent& slot = events_[(events_head_ + events_count_) % capacity];
  slot.t_us = now;
  slot.violation = violation ? 1 : 0;
  ++events_count_;
  if (violation) ++window_violations_;

  const double share = static_cast<double>(window_violations_) /
                       static_cast<double>(events_count_);
  status_.burn_rate = share / (1.0 - spec_.quantile);
  if (burn_rate_gauge_ != nullptr) burn_rate_gauge_->Set(status_.burn_rate);

  // Event-driven window completion: the first observation opens a
  // window; any observation at least window_us past the anchor closes
  // it (evaluating the sliding rate exactly once) and anchors the
  // next. An idle stretch therefore completes at most one window —
  // windows are counted per evaluation, not per elapsed interval.
  bool breached = false;
  if (window_anchor_us_ == 0) {
    window_anchor_us_ = now;
  } else if (now - window_anchor_us_ >= spec_.window_us) {
    ++status_.windows;
    if (status_.burn_rate > 1.0) {
      ++status_.breached_windows;
      breached = true;
      if (breaches_counter_ != nullptr) breaches_counter_->Increment();
    }
    window_anchor_us_ = now;
  }
  return breached;
}

SloStatus SloTracker::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace obs
}  // namespace oodgnn
