#include "src/obs/slo.h"

#include "src/util/check.h"

namespace oodgnn {
namespace obs {
namespace {

bool ValidSloName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const char* SloPhaseName(SloPhase phase) {
  switch (phase) {
    case SloPhase::kE2e: return "e2e";
    case SloPhase::kQueueWait: return "queue_wait";
    case SloPhase::kExecute: return "execute";
  }
  return "unknown";
}

SloTracker::SloTracker(const SloSpec& spec, MetricsRegistry* registry)
    : spec_(spec) {
  OODGNN_CHECK(ValidSloName(spec_.name))
      << "SLO name '" << spec_.name << "' must match [a-z0-9_]+";
  OODGNN_CHECK(spec_.quantile > 0.0 && spec_.quantile < 1.0)
      << "SLO '" << spec_.name << "': quantile must be in (0, 1)";
  OODGNN_CHECK_GE(spec_.window, 1);
  ring_.assign(static_cast<size_t>(spec_.window), 0);
  if (registry != nullptr) {
    const std::string prefix = "slo/" + spec_.name;
    burn_rate_gauge_ = &registry->GetGauge(prefix + "/burn_rate");
    violations_counter_ = &registry->GetCounter(prefix + "/violations");
    breaches_counter_ = &registry->GetCounter(prefix + "/breached_windows");
    registry->GetGauge(prefix + "/threshold_us").Set(spec_.threshold_us);
  }
}

bool SloTracker::Observe(double latency_us, bool error) {
  const bool violation = error || latency_us > spec_.threshold_us;
  bool breached = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++status_.observed;
    window_violations_ += ring_[static_cast<size_t>(ring_pos_)] == 0
                              ? (violation ? 1 : 0)
                              : (violation ? 0 : -1);
    ring_[static_cast<size_t>(ring_pos_)] = violation ? 1 : 0;
    if (violation) ++status_.violations;
    ring_pos_ = (ring_pos_ + 1) % spec_.window;
    if (status_.observed >= spec_.window) {
      // The ring now holds the last `window` outcomes: the sliding
      // burn rate is its violating share over the error budget.
      const double share = static_cast<double>(window_violations_) /
                           static_cast<double>(spec_.window);
      status_.burn_rate = share / (1.0 - spec_.quantile);
      if (burn_rate_gauge_ != nullptr) {
        burn_rate_gauge_->Set(status_.burn_rate);
      }
      // Breaches are counted once per completed (non-overlapping)
      // window so a single bad stretch cannot inflate the counter by
      // its length.
      if (ring_pos_ == 0) {
        ++status_.windows;
        if (status_.burn_rate > 1.0) {
          ++status_.breached_windows;
          breached = true;
          if (breaches_counter_ != nullptr) breaches_counter_->Increment();
        }
      }
    }
  }
  if (violation && violations_counter_ != nullptr) {
    violations_counter_->Increment();
  }
  return breached;
}

SloStatus SloTracker::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace obs
}  // namespace oodgnn
