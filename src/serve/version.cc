#include "src/serve/version.h"

#include <algorithm>
#include <utility>

namespace oodgnn {
namespace serve {

WeightVersionManager::WeightVersionManager(obs::MetricsRegistry* registry) {
  if (registry != nullptr) {
    current_gauge_ = &registry->GetGauge("serve/version/current");
    rollouts_counter_ = &registry->GetCounter("serve/version/rollouts");
    rollbacks_counter_ = &registry->GetCounter("serve/version/rollbacks");
    requests_counter_ = &registry->GetCounter("serve/version/requests");
    quant_publishes_counter_ = &registry->GetCounter("serve/quant/publishes");
    quant_params_counter_ = &registry->GetCounter("serve/quant/params");
    quant_bytes_counter_ = &registry->GetCounter("serve/quant/bytes");
  }
}

std::int64_t WeightVersionManager::Publish(
    std::vector<Tensor> params, std::vector<Tensor> buffers,
    std::shared_ptr<const ComputePlan> plan, WeightDtype dtype,
    std::vector<std::shared_ptr<const QuantizedTensor>> qweights) {
  auto snapshot = std::make_shared<WeightSnapshot>();
  std::lock_guard<std::mutex> lock(mu_);
  snapshot->version = next_version_++;
  snapshot->params = std::move(params);
  snapshot->buffers = std::move(buffers);
  snapshot->plan = std::move(plan);
  snapshot->dtype = dtype;
  snapshot->qweights = std::move(qweights);
  if (snapshot->dtype == WeightDtype::kQ8) {
    std::int64_t quant_params = 0;
    std::int64_t quant_bytes = 0;
    for (const auto& qw : snapshot->qweights) {
      if (qw == nullptr) continue;
      ++quant_params;
      quant_bytes += static_cast<std::int64_t>(qw->byte_size());
    }
    if (quant_publishes_counter_ != nullptr) {
      quant_publishes_counter_->Increment();
      quant_params_counter_->Add(quant_params);
      quant_bytes_counter_->Add(quant_bytes);
    }
  }
  previous_ = std::move(current_);
  current_ = std::move(snapshot);
  ++rollouts_;
  if (rollouts_counter_ != nullptr) rollouts_counter_->Increment();
  if (current_gauge_ != nullptr) {
    current_gauge_->Set(static_cast<double>(current_->version));
  }
  return current_->version;
}

bool WeightVersionManager::Rollback() {
  std::lock_guard<std::mutex> lock(mu_);
  if (previous_ == nullptr) return false;
  std::swap(current_, previous_);
  ++rollbacks_;
  if (rollbacks_counter_ != nullptr) rollbacks_counter_->Increment();
  if (current_gauge_ != nullptr) {
    current_gauge_->Set(static_cast<double>(current_->version));
  }
  return true;
}

std::shared_ptr<const WeightSnapshot> WeightVersionManager::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::int64_t WeightVersionManager::current_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ != nullptr ? current_->version : 0;
}

void WeightVersionManager::RecordServed(std::int64_t version,
                                        std::int64_t requests) {
  if (requests <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::lower_bound(
        counts_.begin(), counts_.end(), version,
        [](const VersionCount& c, std::int64_t v) { return c.version < v; });
    if (it == counts_.end() || it->version != version) {
      it = counts_.insert(it, VersionCount{version, 0});
    }
    it->requests += requests;
  }
  if (requests_counter_ != nullptr) requests_counter_->Add(requests);
}

std::vector<VersionCount> WeightVersionManager::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::int64_t WeightVersionManager::rollouts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rollouts_;
}

std::int64_t WeightVersionManager::rollbacks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rollbacks_;
}

}  // namespace serve
}  // namespace oodgnn
