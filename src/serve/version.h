#ifndef OODGNN_SERVE_VERSION_H_
#define OODGNN_SERVE_VERSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/metrics.h"
#include "src/tensor/exec_plan.h"
#include "src/tensor/quant.h"
#include "src/tensor/tensor.h"

namespace oodgnn {
namespace serve {

/// One immutable published weight state: parameters + buffers in
/// module registration order, the compute plan recorded against that
/// publish (null when compiled execution is off), and the version id
/// that tags every span served from it.
struct WeightSnapshot {
  std::int64_t version = 0;
  std::vector<Tensor> params;
  std::vector<Tensor> buffers;
  std::shared_ptr<const ComputePlan> plan;
  /// Weight representation this publish serves under. When kQ8,
  /// `params` hold the *dequantized* fp32 image (so every non-matmul
  /// consumer sees exactly the values the quantized matmuls reproduce)
  /// and `qweights` aligns with `params`: the int8 block image for
  /// quantized entries, null for params left fp32 (vectors, scalars).
  WeightDtype dtype = WeightDtype::kF32;
  std::vector<std::shared_ptr<const QuantizedTensor>> qweights;
};

/// Per-version lifetime accounting (see WeightVersionManager::counts).
struct VersionCount {
  std::int64_t version = 0;
  std::int64_t requests = 0;  ///< Graphs served on this version.
};

/// Versioned hot weight rollout for the inference engine.
///
/// Publishers (SyncFrom / LoadModelFile / LoadCheckpoint) push an
/// immutable WeightSnapshot; workers poll `current()` at their own
/// batch boundaries and copy the snapshot into their private replica
/// when the version moved — so a rollout staggers across workers
/// instead of stopping the world, and two workers may briefly serve
/// different versions (each span carries the version that served it).
/// `Rollback()` re-publishes the previously active snapshot under its
/// original id, so a bad rollout is undone by the same staggered
/// mechanism, and per-version request counts attribute the damage.
///
/// Thread-safe. Snapshots are shared_ptr<const>: a worker mid-copy
/// pins the state it is reading even if a newer publish lands.
///
/// Registry metrics (null registry keeps the manager purely local):
///
///   gauge    serve/version/current    latest published version id
///   counter  serve/version/rollouts   publishes (including the initial)
///   counter  serve/version/rollbacks  successful rollbacks
///   counter  serve/version/requests   graphs served across all versions
///   counter  serve/quant/publishes    publishes carrying Q8 weights
///   counter  serve/quant/params       quantized param tensors published
///   counter  serve/quant/bytes        int8+scale bytes published
class WeightVersionManager {
 public:
  explicit WeightVersionManager(obs::MetricsRegistry* registry);

  WeightVersionManager(const WeightVersionManager&) = delete;
  WeightVersionManager& operator=(const WeightVersionManager&) = delete;

  /// Publishes a new snapshot and returns its (monotonically
  /// increasing) version id. The previous snapshot is retained as the
  /// rollback target (a rollback restores that snapshot whole —
  /// params, plan, dtype and qweights move together, so a quantized
  /// rollout rolls back to exactly the fp32 state it replaced).
  std::int64_t Publish(
      std::vector<Tensor> params, std::vector<Tensor> buffers,
      std::shared_ptr<const ComputePlan> plan,
      WeightDtype dtype = WeightDtype::kF32,
      std::vector<std::shared_ptr<const QuantizedTensor>> qweights = {});

  /// Re-publishes the previously active snapshot under its original
  /// version id; the replaced snapshot becomes the new rollback target
  /// (so two rollbacks toggle). Returns false when there is no earlier
  /// snapshot to return to.
  bool Rollback();

  /// The snapshot workers should converge to. Null until the first
  /// Publish.
  std::shared_ptr<const WeightSnapshot> current() const;

  /// Latest published version id (0 before the first Publish).
  std::int64_t current_version() const;

  /// Attributes `requests` served graphs to `version`.
  void RecordServed(std::int64_t version, std::int64_t requests);

  /// Per-version served-request counts, sorted by version. Their sum
  /// is exactly the number of graphs executed — the attribution
  /// invariant the chaos suite pins.
  std::vector<VersionCount> counts() const;

  std::int64_t rollouts() const;
  std::int64_t rollbacks() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const WeightSnapshot> current_;   // guarded by mu_
  std::shared_ptr<const WeightSnapshot> previous_;  // guarded by mu_
  std::int64_t next_version_ = 1;                   // guarded by mu_
  std::int64_t rollouts_ = 0;                       // guarded by mu_
  std::int64_t rollbacks_ = 0;                      // guarded by mu_
  std::vector<VersionCount> counts_;                // guarded by mu_

  // Null when constructed without a registry.
  obs::Gauge* current_gauge_ = nullptr;
  obs::Counter* rollouts_counter_ = nullptr;
  obs::Counter* rollbacks_counter_ = nullptr;
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* quant_publishes_counter_ = nullptr;
  obs::Counter* quant_params_counter_ = nullptr;
  obs::Counter* quant_bytes_counter_ = nullptr;
};

}  // namespace serve
}  // namespace oodgnn

#endif  // OODGNN_SERVE_VERSION_H_
