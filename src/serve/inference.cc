#include "src/serve/inference.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/nn/serialize.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/graph/batch.h"
#include "src/train/checkpoint.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace oodgnn {
namespace serve {
namespace {

/// Every replica is initialized from this same seed, so all replicas
/// are bitwise identical to each other even before any SyncFrom/Load.
constexpr uint64_t kReplicaInitSeed = 0x00D64E2A11CE5EEDull;

/// True when `graphs` matches the profile the plan was recorded at
/// closely enough that replaying it can only diverge per-block (size
/// overflow), never structurally. Structural mismatches — a target
/// arity the batch constructor would allocate differently for, or an
/// edgeless batch taking the conv layers' empty-edge branch — run
/// eager instead.
bool PlanAdmits(const ComputePlan& plan,
                const std::vector<const Graph*>& graphs,
                WeightDtype active_dtype) {
  // A plan records the weight representation it was traced under: a
  // quantized forward issues matmul_quant where an fp32 one issues
  // matmul, so replaying across the representations is a structural
  // mismatch. Dtype can differ from the plan's only transiently — the
  // snapshot carries its own plan, so this closes the window where a
  // worker flips representation mid-adoption, never a steady state.
  if (plan.weight_dtype != active_dtype) return false;
  if (graphs.empty()) return false;
  if (static_cast<int>(graphs[0]->targets.size()) != plan.num_targets) {
    return false;
  }
  std::int64_t edges = 0;
  for (const Graph* g : graphs) edges += g->num_edges();
  return edges > 0;
}

/// Deterministic reference batch at the plan envelope: `num_graphs`
/// graphs totalling `max_nodes` nodes (the first takes the bulk) and
/// `max_edges` directed edges laid along a cycle of the first graph.
std::vector<Graph> MakeReferenceGraphs(int num_graphs, int max_nodes,
                                       int max_edges, int feature_dim,
                                       int num_targets) {
  std::vector<Graph> graphs;
  graphs.reserve(static_cast<size_t>(num_graphs));
  const int bulk = std::max(1, max_nodes - (num_graphs - 1));
  for (int i = 0; i < num_graphs; ++i) {
    Graph g(i == 0 ? bulk : 1, feature_dim);
    g.x.Fill(1.f);
    g.label = 0;
    if (num_targets > 0) g.targets.assign(static_cast<size_t>(num_targets), 0.f);
    graphs.push_back(std::move(g));
  }
  Graph& first = graphs[0];
  for (int e = 0; first.num_edges() < max_edges; ++e) {
    // Walks the cycle with an increasing stride, so edge count is
    // exact even past 2 * bulk edges (duplicates are legal multigraph
    // edges for every plan/normalization path).
    const int stride = 1 + e / std::max(1, bulk);
    first.AddEdge(e % bulk, (e + stride) % bulk);
  }
  return graphs;
}

/// Reference-batch envelope a plan is recorded at (slot_budget graphs,
/// node/edge totals from the options or the auto scaling).
struct Envelope {
  int num_graphs = 0;
  int max_nodes = 0;
  int max_edges = 0;
  std::vector<Graph> graphs;
};

Envelope MakeEnvelope(const ModelSpec& spec, const InferenceOptions& options,
                      int slot_budget) {
  Envelope env;
  env.num_graphs = slot_budget;
  env.max_nodes = std::max(options.plan_max_nodes > 0 ? options.plan_max_nodes
                                                      : 32 * env.num_graphs,
                           env.num_graphs);
  env.max_edges = std::max(
      options.plan_max_edges > 0 ? options.plan_max_edges : 4 * env.max_nodes,
      2);
  env.graphs = MakeReferenceGraphs(env.num_graphs, env.max_nodes,
                                   env.max_edges, spec.encoder.feature_dim,
                                   spec.num_targets);
  return env;
}

/// Only matrix parameters are quantized (same eligibility rule as
/// SaveQuantizedModelState): bias vectors and scalars are a rounding
/// error of the weight traffic but would put quantization noise on
/// every output row.
bool QuantEligible(const Tensor& value) {
  return value.rows() > 1 && value.cols() > 1;
}

/// Copies `src` tensors into a module's parameters and buffers
/// (registration order). Caller has already validated counts/shapes.
void ApplyState(const std::vector<Tensor>& params,
                const std::vector<Tensor>& buffers,
                GraphPredictionModel* model) {
  std::vector<Variable> dst_params = model->Parameters();
  OODGNN_CHECK_EQ(params.size(), dst_params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    dst_params[i].mutable_value() = params[i];
  }
  std::vector<Tensor*> dst_buffers = model->Buffers();
  OODGNN_CHECK_EQ(buffers.size(), dst_buffers.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    *dst_buffers[i] = buffers[i];
  }
}

obs::MetricsRegistry* TelemetryRegistry(const InferenceOptions& options) {
  if (!options.telemetry) return nullptr;
  return options.telemetry_registry != nullptr
             ? options.telemetry_registry
             : &obs::MetricsRegistry::Global();
}

}  // namespace

InferenceEngine::InferenceEngine(const ModelSpec& spec,
                                 const InferenceOptions& options)
    : spec_(spec),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()),
      versions_(TelemetryRegistry(options)) {
  OODGNN_CHECK_GT(spec_.output_dim, 0);
  OODGNN_CHECK_GT(spec_.encoder.feature_dim, 0);
  OODGNN_CHECK_GE(options_.num_workers, 1);
  OODGNN_CHECK_GE(options_.max_batch_graphs, 1);
  OODGNN_CHECK_GE(options_.max_batch_wait_us, 0);
  OODGNN_CHECK_GE(options_.max_inflight, 0);
  slot_budget_ = options_.max_inflight > 0 ? options_.max_inflight
                                           : options_.max_batch_graphs;
  replicas_.reserve(static_cast<size_t>(options_.num_workers));
  worker_rngs_.reserve(static_cast<size_t>(options_.num_workers));
  arenas_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    Rng init_rng(kReplicaInitSeed);
    replicas_.push_back(std::make_unique<GraphPredictionModel>(
        spec_.method, spec_.encoder, spec_.output_dim, &init_rng));
    worker_rngs_.push_back(std::make_unique<Rng>(kReplicaInitSeed + i));
    arenas_.push_back(std::make_unique<PlanArena>());
  }
  worker_plans_.resize(static_cast<size_t>(options_.num_workers));
  worker_versions_.assign(static_cast<size_t>(options_.num_workers), 0);
  worker_snapshots_.resize(static_cast<size_t>(options_.num_workers));
  worker_qmaps_.resize(static_cast<size_t>(options_.num_workers));
  {
    Rng init_rng(kReplicaInitSeed);
    master_ = std::make_unique<GraphPredictionModel>(
        spec_.method, spec_.encoder, spec_.output_dim, &init_rng);
  }
  if (options_.telemetry) {
    obs::MetricsRegistry* registry = TelemetryRegistry(options_);
    collector_ = std::make_unique<obs::SpanCollector>(registry);
    slo_trackers_.reserve(options_.slos.size());
    for (const obs::SloSpec& slo : options_.slos) {
      slo_trackers_.push_back(
          std::make_unique<obs::SloTracker>(slo, registry, clock_));
    }
  }
  scheduler_ = std::make_unique<Scheduler>(options_.scheduler,
                                           TelemetryRegistry(options_), clock_);
  if (options_.compiled) {
    // Warm-up forward through the master and every replica once:
    // module-internal caches created lazily on a model's first forward
    // (e.g. FactorGCN attention) must already exist both when a stream
    // is recorded (master) and when it is replayed (replicas), or the
    // first replays would see extra allocations the plan does not
    // have. One warm-up suffices for the engine's lifetime — adoption
    // only copies tensors, never resets caches.
    const Envelope env = MakeEnvelope(spec_, options_, slot_budget_);
    std::vector<const Graph*> ptrs;
    ptrs.reserve(env.graphs.size());
    for (const Graph& g : env.graphs) ptrs.push_back(&g);
    NoGradGuard no_grad;
    {
      Rng rng(kReplicaInitSeed);
      (void)master_->Predict(GraphBatch::FromGraphs(ptrs), /*training=*/false,
                             &rng);
    }
    for (auto& replica : replicas_) {
      Rng rng(kReplicaInitSeed);
      (void)replica->Predict(GraphBatch::FromGraphs(ptrs), /*training=*/false,
                             &rng);
    }
  }
  // Workers have not started yet, so master_mu_ is uncontended here.
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    PublishFromMasterLocked();
  }
  // Preload every worker with the initial snapshot. Replicas are
  // bitwise identical to the pre-publish master (same init seed), so
  // an fp32 publish needs no adoption copy — the compiled path is
  // zero-allocation from request one. A quantized publish wrote the
  // dequantized image back into the master, so the replicas must copy
  // to match it.
  const std::shared_ptr<const WeightSnapshot> initial = versions_.current();
  for (int i = 0; i < options_.num_workers; ++i) {
    AdoptSnapshot(i, initial,
                  /*copy_weights=*/initial->dtype != WeightDtype::kF32);
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&InferenceEngine::WorkerLoop, this, i);
  }
}

InferenceEngine::~InferenceEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void InferenceEngine::SyncFrom(const GraphPredictionModel& model) {
  const std::vector<Variable> src_params = model.Parameters();
  const std::vector<Tensor*> src_buffers = model.Buffers();
  std::vector<Tensor> params;
  params.reserve(src_params.size());
  for (const Variable& p : src_params) params.push_back(p.value());
  std::vector<Tensor> buffers;
  buffers.reserve(src_buffers.size());
  for (const Tensor* b : src_buffers) buffers.push_back(*b);

  std::lock_guard<std::mutex> lock(master_mu_);
  ApplyState(params, buffers, master_.get());
  PublishFromMasterLocked();
}

bool InferenceEngine::LoadModelFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(master_mu_);
  // Validate + apply against the master; nothing is published (and no
  // worker is affected) unless the load succeeds in full. Accepts both
  // fp32 (OODM) and quantized (OODQ) snapshots — a quantized file is
  // dequantized into the master here, and the publish below decides
  // independently whether to serve it quantized.
  if (!LoadAnyModelState(path, master_.get())) return false;
  PublishFromMasterLocked();
  return true;
}

bool InferenceEngine::LoadCheckpoint(const std::string& path) {
  TrainState state;
  if (!LoadTrainState(path, &state)) return false;
  if (state.method != static_cast<uint32_t>(spec_.method)) {
    OODGNN_LOG(Error) << path << ": checkpoint method " << state.method
                      << " does not match the engine's spec ("
                      << MethodName(spec_.method) << ")";
    return false;
  }
  std::lock_guard<std::mutex> lock(master_mu_);
  const std::vector<Variable> expected = master_->Parameters();
  if (state.params.size() != expected.size() ||
      state.buffers.size() != master_->Buffers().size()) {
    OODGNN_LOG(Error) << path << ": checkpoint has " << state.params.size()
                      << " parameter and " << state.buffers.size()
                      << " buffer tensors; the spec's model expects "
                      << expected.size() << " / " << master_->Buffers().size();
    return false;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (!state.params[i].SameShape(expected[i].value())) {
      OODGNN_LOG(Error) << path << ": checkpoint parameter " << i
                        << " shape mismatch";
      return false;
    }
  }
  ApplyState(state.params, state.buffers, master_.get());
  PublishFromMasterLocked();
  return true;
}

bool InferenceEngine::RollbackWeights() {
  // master_mu_ serializes rollbacks against publishes, so the
  // previous/current pair the manager swaps is never mid-update.
  std::lock_guard<std::mutex> lock(master_mu_);
  return versions_.Rollback();
}

std::future<Tensor> InferenceEngine::Submit(const Graph& graph) {
  return Submit(graph, static_cast<obs::RequestSpan*>(nullptr));
}

std::future<Tensor> InferenceEngine::Submit(const Graph& graph,
                                            obs::RequestSpan* span_out) {
  return Submit(graph, SubmitOptions{}, span_out).future;
}

SubmitResult InferenceEngine::Submit(const Graph& graph,
                                     const SubmitOptions& submit_options,
                                     obs::RequestSpan* span_out) {
  auto request = std::make_unique<Request>();
  request->graph = &graph;
  request->span_out = span_out;
  request->span.request_id =
      requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  SubmitResult result;
  result.request_id = request->span.request_id;
  result.future = request->promise.get_future();
  ShedReason reason = ShedReason::kNone;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    OODGNN_CHECK(!stop_) << "Submit after engine shutdown";
    const std::int64_t now = clock_->NowMicros();
    request->span.enqueue_us = now;
    // Deadlines arrive relative to enqueue (a negative value means
    // already expired — the chaos tests use that); the queue stores
    // them absolute.
    const std::int64_t relative =
        submit_options.deadline_us != 0
            ? submit_options.deadline_us
            : scheduler_->options().default_deadline_us;
    if (relative != 0) request->span.deadline_us = now + relative;
    QueuedRequest queued;
    queued.priority = submit_options.priority;
    queued.deadline_us = request->span.deadline_us;
    queued.tenant_index = scheduler_->TenantIndex(submit_options.tenant);
    queued.payload = request.get();
    reason = scheduler_->Admit(queued);
    if (reason == ShedReason::kNone) {
      // The queue owns the request until a worker pops it.
      request.release();
      // Inside the lock so depth updates are totally ordered with the
      // workers' pops — the gauge provably reads 0 once drained.
      if (collector_ != nullptr) {
        collector_->RecordEnqueue(scheduler_->size());
      }
    }
  }
  if (reason == ShedReason::kNone) {
    result.admitted = true;
    queue_cv_.notify_one();
  } else {
    result.shed = reason;
    FailShed(std::move(request), reason);
  }
  return result;
}

Tensor InferenceEngine::Predict(const Graph& graph) {
  return Submit(graph).get();
}

void InferenceEngine::FailShed(std::unique_ptr<Request> request,
                               ShedReason reason) {
  request->span.done_us = clock_->NowMicros();
  if (request->span_out != nullptr) *request->span_out = request->span;
  request->promise.set_exception(std::make_exception_ptr(
      ShedError(reason, request->span.request_id)));
}

InferenceStats InferenceEngine::stats() const {
  InferenceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.planned_batches = planned_batches_.load(std::memory_order_relaxed);
  stats.eager_batches = eager_batches_.load(std::memory_order_relaxed);
  stats.diverged_batches = diverged_batches_.load(std::memory_order_relaxed);
  stats.fallback_heap_allocs =
      fallback_heap_allocs_.load(std::memory_order_relaxed);
  stats.plan_recompiles = plan_recompiles_.load(std::memory_order_relaxed);
  stats.arena_bytes = arena_bytes_.load(std::memory_order_relaxed);
  if (collector_ != nullptr) {
    stats.queue_depth = collector_->queue_depth();
    stats.inflight_batches = collector_->inflight_batches();
    stats.queue_wait_us = collector_->queue_wait().GetSummary();
    stats.batch_build_us = collector_->batch_build().GetSummary();
    stats.execute_us = collector_->execute().GetSummary();
    stats.e2e_us = collector_->e2e().GetSummary();
    stats.slos.reserve(slo_trackers_.size());
    for (const auto& tracker : slo_trackers_) {
      stats.slos.push_back({tracker->spec().name, tracker->status()});
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stats.scheduler = scheduler_->stats();
  }
  stats.weight_version = versions_.current_version();
  stats.rollouts = versions_.rollouts();
  stats.rollbacks = versions_.rollbacks();
  stats.versions = versions_.counts();
  return stats;
}

std::shared_ptr<const ComputePlan> InferenceEngine::plan() const {
  const std::shared_ptr<const WeightSnapshot> snapshot = versions_.current();
  return snapshot != nullptr ? snapshot->plan : nullptr;
}

std::shared_ptr<const ComputePlan> InferenceEngine::CompilePlanLocked(
    WeightDtype dtype, const QuantizedWeightMap* qmap) {
  OODGNN_TRACE_SCOPE("serve/plan_compile");
  const Envelope env = MakeEnvelope(spec_, options_, slot_budget_);
  std::vector<const Graph*> ptrs;
  ptrs.reserve(env.graphs.size());
  for (const Graph& g : env.graphs) ptrs.push_back(&g);

  NoGradGuard no_grad;
  // Route the reference forward's matmuls through the int8 blocks when
  // quantizing (null clears any inherited scope), so the recorded
  // kernel stream matches what quantized replays will issue.
  ScopedQuantizedWeights quant_scope(qmap);
  ComputePlan plan;
  {
    // Recording installs a thread-local allocation sink, so workers
    // replaying the previous plan concurrently are untouched.
    PlanRecordScope record;
    {
      const GraphBatch batch = GraphBatch::FromGraphs(ptrs);
      Rng rng(kReplicaInitSeed);
      const Tensor logits =
          master_->Predict(batch, /*training=*/false, &rng).value();
      (void)logits;
    }  // Intermediates die here: their extents become reusable holes.
    plan = record.Finish();
  }
  plan.max_graphs = env.num_graphs;
  plan.max_nodes = env.max_nodes;
  plan.max_edges = env.max_edges;
  plan.num_targets = spec_.num_targets;
  plan.weight_dtype = dtype;
  auto shared = std::make_shared<const ComputePlan>(std::move(plan));
  plan_recompiles_.fetch_add(1, std::memory_order_relaxed);
  arena_bytes_.store(shared->capacity_bytes(), std::memory_order_relaxed);
  if (collector_ != nullptr) {
    collector_->RecordPlanCompile(
        shared->capacity_bytes(),
        static_cast<std::int64_t>(shared->slots.size()),
        shared->reuse_ratio());
  }
  return shared;
}

void InferenceEngine::PublishFromMasterLocked() {
  const bool quantize =
      options_.quantize == QuantizeMode::kOn ||
      (options_.quantize == QuantizeMode::kFollowProcess && QuantizeEnabled());
  const WeightDtype dtype = quantize ? WeightDtype::kQ8 : WeightDtype::kF32;
  std::vector<std::shared_ptr<const QuantizedTensor>> qweights;
  QuantizedWeightMap master_qmap;
  if (quantize) {
    // Quantize the matrix parameters and write the dequantized image
    // back into the master, so the plan recording, the published fp32
    // params, and every non-matmul consumer all see exactly the values
    // the quantized matmuls reproduce. Re-quantizing a dequantized
    // image is a fixed point, so repeated publishes do not drift.
    std::vector<Variable> params = master_->Parameters();
    qweights.reserve(params.size());
    for (Variable& param : params) {
      if (!QuantEligible(param.value())) {
        qweights.push_back(nullptr);
        continue;
      }
      auto quantized = std::make_shared<QuantizedTensor>(
          QuantizeQ8(param.value()));
      param.mutable_value() = DequantizeQ8(*quantized);
      master_qmap[param.value().data()] = quantized.get();
      qweights.push_back(std::move(quantized));
    }
  }
  std::vector<Tensor> params;
  for (const Variable& p : master_->Parameters()) params.push_back(p.value());
  std::vector<Tensor> buffers;
  for (const Tensor* b : master_->Buffers()) buffers.push_back(*b);
  // The snapshot carries the plan recorded against exactly these
  // weights' shapes and representation, so a worker adopting it can
  // never pair new weights with a stale plan (or vice versa).
  std::shared_ptr<const ComputePlan> plan;
  if (options_.compiled) {
    plan = CompilePlanLocked(dtype, quantize ? &master_qmap : nullptr);
  }
  versions_.Publish(std::move(params), std::move(buffers), std::move(plan),
                    dtype, std::move(qweights));
}

void InferenceEngine::AdoptCurrentVersion(int worker_index) {
  const std::shared_ptr<const WeightSnapshot> target = versions_.current();
  const size_t w = static_cast<size_t>(worker_index);
  if (target == nullptr || target->version == worker_versions_[w]) return;
  AdoptSnapshot(worker_index, target, /*copy_weights=*/true);
}

void InferenceEngine::AdoptSnapshot(
    int worker_index, const std::shared_ptr<const WeightSnapshot>& snapshot,
    bool copy_weights) {
  const size_t w = static_cast<size_t>(worker_index);
  if (copy_weights) {
    ApplyState(snapshot->params, snapshot->buffers, replicas_[w].get());
  }
  worker_plans_[w] = snapshot->plan;
  if (snapshot->plan != nullptr) {
    arenas_[w]->Resize(snapshot->plan->capacity_floats);
  }
  // The qmap keys on the replica's own parameter storage (adoption
  // copies into fresh tensors); the pinned snapshot keeps the mapped
  // QuantizedTensor blocks alive for as long as the map can be
  // consulted.
  worker_qmaps_[w].clear();
  if (snapshot->dtype == WeightDtype::kQ8) {
    const std::vector<Variable> params = replicas_[w]->Parameters();
    OODGNN_CHECK_EQ(params.size(), snapshot->qweights.size());
    for (size_t i = 0; i < params.size(); ++i) {
      if (snapshot->qweights[i] == nullptr) continue;
      worker_qmaps_[w][params[i].value().data()] =
          snapshot->qweights[i].get();
    }
  }
  worker_snapshots_[w] = snapshot;
  worker_versions_[w] = snapshot->version;
}

void InferenceEngine::WorkerLoop(int worker_index) {
  for (;;) {
    std::vector<QueuedRequest> popped;
    std::vector<QueuedRequest> expired;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !scheduler_->empty(); });
      if (scheduler_->empty()) return;  // stop_ set and queue drained
      // Batching window: a request is in hand; give the queue a bounded
      // chance to fill up to the size cutoff before executing.
      if (!stop_ && options_.max_batch_wait_us > 0 &&
          scheduler_->size() < options_.max_batch_graphs) {
        queue_cv_.wait_for(
            lock, std::chrono::microseconds(options_.max_batch_wait_us),
            [&] {
              return stop_ ||
                     scheduler_->size() >= options_.max_batch_graphs;
            });
      }
      // Continuous top-up: take work up to this worker's slot budget
      // in dispatch order; whatever remains is immediately available
      // to a sibling.
      scheduler_->PopBatch(slot_budget_, &popped, &expired);
      if (collector_ != nullptr) {
        collector_->RecordQueueDepth(scheduler_->size());
      }
    }
    // More requests may remain; let a sibling start on them while this
    // worker executes.
    queue_cv_.notify_one();
    for (QueuedRequest& item : expired) {
      std::unique_ptr<Request> request(static_cast<Request*>(item.payload));
      FailShed(std::move(request), ShedReason::kDeadlineExpired);
    }
    if (popped.empty()) continue;
    std::vector<std::unique_ptr<Request>> batch;
    batch.reserve(popped.size());
    const std::int64_t admit_us = clock_->NowMicros();
    for (QueuedRequest& item : popped) {
      std::unique_ptr<Request> request(static_cast<Request*>(item.payload));
      request->span.admit_us = admit_us;
      batch.push_back(std::move(request));
    }
    // Adopt the newest weight version at the batch boundary: rollouts
    // stagger across workers, and an in-flight batch always finishes
    // on the version it started with.
    AdoptCurrentVersion(worker_index);
    ExecuteBatch(worker_index, std::move(batch));
  }
}

void InferenceEngine::ExecuteBatch(int worker_index,
                                   std::vector<std::unique_ptr<Request>> batch) {
  OODGNN_TRACE_SCOPE("serve/batch");
  if (collector_ != nullptr) collector_->RecordBatchBegin();
  const size_t w = static_cast<size_t>(worker_index);
  std::vector<const Graph*> graphs;
  graphs.reserve(batch.size());
  std::int64_t total_nodes = 0;
  for (const auto& request : batch) {
    graphs.push_back(request->graph);
    total_nodes += request->graph->num_nodes();
  }
  const std::int64_t version = worker_versions_[w];

  Tensor logits;
  std::int64_t execute_start_us = 0;
  {
    // The replica, rng, plan and arena below are exclusively this
    // worker's; publishers only touch the version manager, so no
    // weight lock is needed around the forward.
    NoGradGuard no_grad;
    Rng* rng = worker_rngs_[w].get();
    const std::string rng_before = rng->SaveState();
    GraphPredictionModel* model = replicas_[w].get();
    const std::shared_ptr<const ComputePlan> plan = worker_plans_[w];
    const WeightDtype dtype = worker_snapshots_[w] != nullptr
                                  ? worker_snapshots_[w]->dtype
                                  : WeightDtype::kF32;
    // Routes this worker's matmuls through its int8 block images while
    // serving a quantized snapshot (one thread-local pointer install;
    // null keeps the fp32 fast path). The map lookup happens on this
    // thread inside the Backend entry point, before work fans out to
    // pool threads.
    ScopedQuantizedWeights quant_scope(
        dtype == WeightDtype::kQ8 ? &worker_qmaps_[w] : nullptr);
    if (plan != nullptr && PlanAdmits(*plan, graphs, dtype)) {
      PlanReplayScope replay(plan, arenas_[w].get(), dtype);
      {
        // Batch construction is part of the recorded stream: its
        // tensors (features, GCN coefficients, targets) occupy plan
        // slots like any forward intermediate.
        const GraphBatch graph_batch = GraphBatch::FromGraphs(graphs);
        execute_start_us = clock_->NowMicros();
        logits = model->Predict(graph_batch, /*training=*/false, rng).value();
      }
      const PlanReplayStats& replay_stats = replay.stats();
      planned_batches_.fetch_add(1, std::memory_order_relaxed);
      if (replay_stats.diverged) {
        diverged_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      if (replay_stats.heap_allocs > 0) {
        fallback_heap_allocs_.fetch_add(replay_stats.heap_allocs,
                                        std::memory_order_relaxed);
      }
      if (collector_ != nullptr) {
        collector_->RecordReplay(
            static_cast<std::int64_t>(replay_stats.peak_floats) *
                static_cast<std::int64_t>(sizeof(float)),
            replay_stats.diverged, replay_stats.heap_allocs);
      }
    } else {
      const GraphBatch graph_batch = GraphBatch::FromGraphs(graphs);
      execute_start_us = clock_->NowMicros();
      logits = model->Predict(graph_batch, /*training=*/false, rng).value();
      if (plan != nullptr) {
        eager_batches_.fetch_add(1, std::memory_order_relaxed);
        if (collector_ != nullptr) collector_->RecordEagerBatch();
      }
    }
    OODGNN_CHECK(rng->SaveState() == rng_before)
        << "eval-mode Predict consumed randomness";
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  versions_.RecordServed(version, static_cast<std::int64_t>(batch.size()));

  OODGNN_CHECK_EQ(logits.rows(), static_cast<int>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    Tensor row(1, logits.cols());
    std::memcpy(row.data(),
                logits.data() + static_cast<size_t>(i) * logits.cols(),
                static_cast<size_t>(logits.cols()) * sizeof(float));
    Request& request = *batch[i];
    request.span.execute_us = execute_start_us;
    request.span.done_us = clock_->NowMicros();
    request.span.model_version = version;
    // The finished span is recorded (and mirrored to the caller's
    // span_out) before the promise resolves, so totals reconcile the
    // moment future.get() returns.
    if (request.span_out != nullptr) *request.span_out = request.span;
    if (collector_ != nullptr) {
      collector_->RecordSpan(request.span);
      ObserveSlos(request.span);
    }
    request.promise.set_value(std::move(row));
  }
  if (collector_ != nullptr) {
    collector_->RecordBatchEnd(static_cast<std::int64_t>(batch.size()),
                               total_nodes);
  }
}

void InferenceEngine::ObserveSlos(const obs::RequestSpan& span) {
  double worst_burn = 0.0;
  for (auto& tracker : slo_trackers_) {
    double latency_us = 0.0;
    switch (tracker->spec().phase) {
      case obs::SloPhase::kE2e:
        latency_us = static_cast<double>(span.e2e_us());
        break;
      case obs::SloPhase::kQueueWait:
        latency_us = static_cast<double>(span.queue_wait_us());
        break;
      case obs::SloPhase::kExecute:
        latency_us = static_cast<double>(span.execute_dur_us());
        break;
    }
    if (tracker->Observe(latency_us)) {
      const obs::SloStatus status = tracker->status();
      OODGNN_LOG(Warning) << "SLO '" << tracker->spec().name
                          << "' breached: burn rate " << status.burn_rate
                          << " over the last " << tracker->spec().window
                          << " requests (threshold "
                          << tracker->spec().threshold_us << " us at p"
                          << 100.0 * tracker->spec().quantile << ")";
    }
    worst_burn = std::max(worst_burn, tracker->status().burn_rate);
  }
  // The scheduler sheds against the worst current burn rate across the
  // tracked objectives (SetBurnRate is atomic; no queue lock here).
  if (!slo_trackers_.empty()) scheduler_->SetBurnRate(worst_burn);
}

}  // namespace serve
}  // namespace oodgnn
