#include "src/serve/inference.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/nn/serialize.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/graph/batch.h"
#include "src/train/checkpoint.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace oodgnn {
namespace serve {
namespace {

/// Every replica is initialized from this same seed, so all replicas
/// are bitwise identical to each other even before any SyncFrom/Load.
constexpr uint64_t kReplicaInitSeed = 0x00D64E2A11CE5EEDull;

/// True when `graphs` matches the profile the plan was recorded at
/// closely enough that replaying it can only diverge per-block (size
/// overflow), never structurally. Structural mismatches — a target
/// arity the batch constructor would allocate differently for, or an
/// edgeless batch taking the conv layers' empty-edge branch — run
/// eager instead.
bool PlanAdmits(const ComputePlan& plan,
                const std::vector<const Graph*>& graphs) {
  if (graphs.empty()) return false;
  if (static_cast<int>(graphs[0]->targets.size()) != plan.num_targets) {
    return false;
  }
  std::int64_t edges = 0;
  for (const Graph* g : graphs) edges += g->num_edges();
  return edges > 0;
}

/// Deterministic reference batch at the plan envelope: `num_graphs`
/// graphs totalling `max_nodes` nodes (the first takes the bulk) and
/// `max_edges` directed edges laid along a cycle of the first graph.
std::vector<Graph> MakeReferenceGraphs(int num_graphs, int max_nodes,
                                       int max_edges, int feature_dim,
                                       int num_targets) {
  std::vector<Graph> graphs;
  graphs.reserve(static_cast<size_t>(num_graphs));
  const int bulk = std::max(1, max_nodes - (num_graphs - 1));
  for (int i = 0; i < num_graphs; ++i) {
    Graph g(i == 0 ? bulk : 1, feature_dim);
    g.x.Fill(1.f);
    g.label = 0;
    if (num_targets > 0) g.targets.assign(static_cast<size_t>(num_targets), 0.f);
    graphs.push_back(std::move(g));
  }
  Graph& first = graphs[0];
  for (int e = 0; first.num_edges() < max_edges; ++e) {
    // Walks the cycle with an increasing stride, so edge count is
    // exact even past 2 * bulk edges (duplicates are legal multigraph
    // edges for every plan/normalization path).
    const int stride = 1 + e / std::max(1, bulk);
    first.AddEdge(e % bulk, (e + stride) % bulk);
  }
  return graphs;
}

/// Copies `src` tensors into a module's parameters and buffers
/// (registration order). Caller has already validated counts/shapes.
void ApplyState(const std::vector<Tensor>& params,
                const std::vector<Tensor>& buffers,
                GraphPredictionModel* model) {
  std::vector<Variable> dst_params = model->Parameters();
  OODGNN_CHECK_EQ(params.size(), dst_params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    dst_params[i].mutable_value() = params[i];
  }
  std::vector<Tensor*> dst_buffers = model->Buffers();
  OODGNN_CHECK_EQ(buffers.size(), dst_buffers.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    *dst_buffers[i] = buffers[i];
  }
}

}  // namespace

InferenceEngine::InferenceEngine(const ModelSpec& spec,
                                 const InferenceOptions& options)
    : spec_(spec), options_(options) {
  OODGNN_CHECK_GT(spec_.output_dim, 0);
  OODGNN_CHECK_GT(spec_.encoder.feature_dim, 0);
  OODGNN_CHECK_GE(options_.num_workers, 1);
  OODGNN_CHECK_GE(options_.max_batch_graphs, 1);
  OODGNN_CHECK_GE(options_.max_batch_wait_us, 0);
  replicas_.reserve(static_cast<size_t>(options_.num_workers));
  worker_rngs_.reserve(static_cast<size_t>(options_.num_workers));
  arenas_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    Rng init_rng(kReplicaInitSeed);
    replicas_.push_back(std::make_unique<GraphPredictionModel>(
        spec_.method, spec_.encoder, spec_.output_dim, &init_rng));
    worker_rngs_.push_back(std::make_unique<Rng>(kReplicaInitSeed + i));
    arenas_.push_back(std::make_unique<PlanArena>());
  }
  // Workers have not started yet, so no lock is needed for the initial
  // compile.
  if (options_.compiled) RecompilePlanLocked();
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&InferenceEngine::WorkerLoop, this, i);
  }
}

InferenceEngine::~InferenceEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void InferenceEngine::SyncFrom(const GraphPredictionModel& model) {
  const std::vector<Variable> src_params = model.Parameters();
  const std::vector<Tensor*> src_buffers = model.Buffers();
  std::vector<Tensor> params;
  params.reserve(src_params.size());
  for (const Variable& p : src_params) params.push_back(p.value());
  std::vector<Tensor> buffers;
  buffers.reserve(src_buffers.size());
  for (const Tensor* b : src_buffers) buffers.push_back(*b);

  std::unique_lock<std::shared_mutex> lock(weights_mu_);
  for (auto& replica : replicas_) {
    ApplyState(params, buffers, replica.get());
  }
  // One writer critical section swaps the weights AND the plan traced
  // against them; a worker can never see new weights with a stale plan
  // (or vice versa).
  if (options_.compiled) RecompilePlanLocked();
}

bool InferenceEngine::LoadModelFile(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(weights_mu_);
  // Validate + apply against the first replica, then mirror its state
  // into the others (reads the file once).
  if (!LoadModelState(path, replicas_[0].get())) return false;
  std::vector<Tensor> params;
  for (const Variable& p : replicas_[0]->Parameters()) {
    params.push_back(p.value());
  }
  std::vector<Tensor> buffers;
  for (const Tensor* b : replicas_[0]->Buffers()) buffers.push_back(*b);
  for (size_t i = 1; i < replicas_.size(); ++i) {
    ApplyState(params, buffers, replicas_[i].get());
  }
  if (options_.compiled) RecompilePlanLocked();
  return true;
}

bool InferenceEngine::LoadCheckpoint(const std::string& path) {
  TrainState state;
  if (!LoadTrainState(path, &state)) return false;
  if (state.method != static_cast<uint32_t>(spec_.method)) {
    OODGNN_LOG(Error) << path << ": checkpoint method " << state.method
                      << " does not match the engine's spec ("
                      << MethodName(spec_.method) << ")";
    return false;
  }
  const std::vector<Variable> expected = replicas_[0]->Parameters();
  if (state.params.size() != expected.size() ||
      state.buffers.size() != replicas_[0]->Buffers().size()) {
    OODGNN_LOG(Error) << path << ": checkpoint has " << state.params.size()
                      << " parameter and " << state.buffers.size()
                      << " buffer tensors; the spec's model expects "
                      << expected.size() << " / "
                      << replicas_[0]->Buffers().size();
    return false;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (!state.params[i].SameShape(expected[i].value())) {
      OODGNN_LOG(Error) << path << ": checkpoint parameter " << i
                        << " shape mismatch";
      return false;
    }
  }
  std::unique_lock<std::shared_mutex> lock(weights_mu_);
  for (auto& replica : replicas_) {
    ApplyState(state.params, state.buffers, replica.get());
  }
  if (options_.compiled) RecompilePlanLocked();
  return true;
}

std::future<Tensor> InferenceEngine::Submit(const Graph& graph) {
  Request request;
  request.graph = &graph;
  std::future<Tensor> result = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    OODGNN_CHECK(!stop_) << "Submit after engine shutdown";
    queue_.push_back(std::move(request));
  }
  queue_cv_.notify_one();
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (obs::ProfilingEnabled()) {
    obs::MetricsRegistry::Global().GetCounter("serve/requests").Increment();
  }
  return result;
}

Tensor InferenceEngine::Predict(const Graph& graph) {
  return Submit(graph).get();
}

InferenceStats InferenceEngine::stats() const {
  InferenceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.planned_batches = planned_batches_.load(std::memory_order_relaxed);
  stats.eager_batches = eager_batches_.load(std::memory_order_relaxed);
  stats.diverged_batches = diverged_batches_.load(std::memory_order_relaxed);
  stats.fallback_heap_allocs =
      fallback_heap_allocs_.load(std::memory_order_relaxed);
  stats.plan_recompiles = plan_recompiles_.load(std::memory_order_relaxed);
  stats.arena_bytes = arena_bytes_.load(std::memory_order_relaxed);
  return stats;
}

std::shared_ptr<const ComputePlan> InferenceEngine::plan() const {
  std::shared_lock<std::shared_mutex> lock(weights_mu_);
  return plan_;
}

void InferenceEngine::RecompilePlanLocked() {
  OODGNN_TRACE_SCOPE("serve/plan_compile");
  const int num_graphs = options_.max_batch_graphs;
  const int max_nodes = std::max(
      options_.plan_max_nodes > 0 ? options_.plan_max_nodes : 32 * num_graphs,
      num_graphs);
  const int max_edges = std::max(
      options_.plan_max_edges > 0 ? options_.plan_max_edges : 4 * max_nodes,
      2);
  const std::vector<Graph> ref_graphs =
      MakeReferenceGraphs(num_graphs, max_nodes, max_edges,
                          spec_.encoder.feature_dim, spec_.num_targets);
  std::vector<const Graph*> ptrs;
  ptrs.reserve(ref_graphs.size());
  for (const Graph& g : ref_graphs) ptrs.push_back(&g);

  NoGradGuard no_grad;
  // Warm-up forward through every replica first: module-internal
  // caches created lazily on a replica's first forward (e.g. FactorGCN
  // attention) must already exist when the stream is recorded, or
  // workers' first replays would see extra allocations the plan does
  // not have.
  for (auto& replica : replicas_) {
    const GraphBatch batch = GraphBatch::FromGraphs(ptrs);
    Rng rng(kReplicaInitSeed);
    (void)replica->Predict(batch, /*training=*/false, &rng);
  }

  ComputePlan plan;
  {
    PlanRecordScope record;
    {
      const GraphBatch batch = GraphBatch::FromGraphs(ptrs);
      Rng rng(kReplicaInitSeed);
      const Tensor logits =
          replicas_[0]->Predict(batch, /*training=*/false, &rng).value();
      (void)logits;
    }  // Intermediates die here: their extents become reusable holes.
    plan = record.Finish();
  }
  plan.max_graphs = num_graphs;
  plan.max_nodes = max_nodes;
  plan.max_edges = max_edges;
  plan.num_targets = spec_.num_targets;
  plan_ = std::make_shared<const ComputePlan>(std::move(plan));
  for (auto& arena : arenas_) arena->Resize(plan_->capacity_floats);
  plan_recompiles_.fetch_add(1, std::memory_order_relaxed);
  arena_bytes_.store(plan_->capacity_bytes(), std::memory_order_relaxed);
  if (obs::ProfilingEnabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("serve/plan/arena_bytes")
        .Set(static_cast<double>(plan_->capacity_bytes()));
    registry.GetGauge("serve/plan/slots")
        .Set(static_cast<double>(plan_->slots.size()));
    registry.GetGauge("serve/plan/reuse_x1000")
        .Set(1000.0 * plan_->reuse_ratio());
    registry.GetCounter("serve/plan/recompiles").Increment();
  }
}

void InferenceEngine::WorkerLoop(int worker_index) {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      // Batching window: a request is in hand; give the queue a bounded
      // chance to fill up to the size cutoff before executing.
      if (!stop_ && options_.max_batch_wait_us > 0 &&
          static_cast<int>(queue_.size()) < options_.max_batch_graphs) {
        queue_cv_.wait_for(
            lock, std::chrono::microseconds(options_.max_batch_wait_us),
            [&] {
              return stop_ || static_cast<int>(queue_.size()) >=
                                  options_.max_batch_graphs;
            });
      }
      const size_t take =
          std::min(queue_.size(),
                   static_cast<size_t>(options_.max_batch_graphs));
      // A sibling may have drained the queue while this worker sat in
      // the batching window; go back to waiting instead of executing
      // an empty batch.
      if (take == 0) continue;
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // More requests may remain; let a sibling start on them while this
    // worker executes.
    queue_cv_.notify_one();
    ExecuteBatch(worker_index, std::move(batch));
  }
}

void InferenceEngine::ExecuteBatch(int worker_index,
                                   std::vector<Request> batch) {
  OODGNN_TRACE_SCOPE("serve/batch");
  const auto start = std::chrono::steady_clock::now();
  std::vector<const Graph*> graphs;
  graphs.reserve(batch.size());
  for (const Request& request : batch) graphs.push_back(request.graph);

  Tensor logits;
  {
    std::shared_lock<std::shared_mutex> weights(weights_mu_);
    NoGradGuard no_grad;
    Rng* rng = worker_rngs_[static_cast<size_t>(worker_index)].get();
    const std::string rng_before = rng->SaveState();
    GraphPredictionModel* model =
        replicas_[static_cast<size_t>(worker_index)].get();
    // plan_ / arenas_ are stable while the shared lock is held; the
    // replay scope pins the arena buffer beyond it through the logits'
    // storage.
    const std::shared_ptr<const ComputePlan> plan = plan_;
    if (plan != nullptr && PlanAdmits(*plan, graphs)) {
      PlanReplayScope replay(plan, arenas_[static_cast<size_t>(worker_index)].get());
      {
        // Batch construction is part of the recorded stream: its
        // tensors (features, GCN coefficients, targets) occupy plan
        // slots like any forward intermediate.
        const GraphBatch graph_batch = GraphBatch::FromGraphs(graphs);
        logits = model->Predict(graph_batch, /*training=*/false, rng).value();
      }
      const PlanReplayStats& replay_stats = replay.stats();
      planned_batches_.fetch_add(1, std::memory_order_relaxed);
      if (replay_stats.diverged) {
        diverged_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      if (replay_stats.heap_allocs > 0) {
        fallback_heap_allocs_.fetch_add(replay_stats.heap_allocs,
                                        std::memory_order_relaxed);
      }
      if (obs::ProfilingEnabled()) {
        auto& registry = obs::MetricsRegistry::Global();
        registry.GetGauge("serve/plan/peak_bytes")
            .Set(static_cast<double>(replay_stats.peak_floats) *
                 static_cast<double>(sizeof(float)));
        if (replay_stats.diverged) {
          registry.GetCounter("serve/plan/diverged_batches").Increment();
        }
        if (replay_stats.heap_allocs > 0) {
          registry.GetCounter("serve/plan/fallback_heap_allocs")
              .Add(replay_stats.heap_allocs);
        }
      }
    } else {
      const GraphBatch graph_batch = GraphBatch::FromGraphs(graphs);
      logits = model->Predict(graph_batch, /*training=*/false, rng).value();
      if (plan != nullptr) {
        eager_batches_.fetch_add(1, std::memory_order_relaxed);
        if (obs::ProfilingEnabled()) {
          obs::MetricsRegistry::Global()
              .GetCounter("serve/plan/eager_batches")
              .Increment();
        }
      }
    }
    OODGNN_CHECK(rng->SaveState() == rng_before)
        << "eval-mode Predict consumed randomness";
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  if (obs::ProfilingEnabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("serve/batches").Increment();
    registry.GetCounter("serve/graphs")
        .Add(static_cast<std::int64_t>(batch.size()));
    registry.GetHistogram("serve/batch_graphs")
        .Observe(static_cast<double>(batch.size()));
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    registry.GetHistogram("serve/batch_us")
        .Observe(static_cast<double>(elapsed.count()));
  }

  OODGNN_CHECK_EQ(logits.rows(), static_cast<int>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    Tensor row(1, logits.cols());
    std::memcpy(row.data(),
                logits.data() + static_cast<size_t>(i) * logits.cols(),
                static_cast<size_t>(logits.cols()) * sizeof(float));
    batch[i].promise.set_value(std::move(row));
  }
}

}  // namespace serve
}  // namespace oodgnn
