#include "src/serve/inference.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/nn/serialize.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/graph/batch.h"
#include "src/train/checkpoint.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace serve {
namespace {

/// Every replica is initialized from this same seed, so all replicas
/// are bitwise identical to each other even before any SyncFrom/Load.
constexpr uint64_t kReplicaInitSeed = 0x00D64E2A11CE5EEDull;

/// True when `graphs` matches the profile the plan was recorded at
/// closely enough that replaying it can only diverge per-block (size
/// overflow), never structurally. Structural mismatches — a target
/// arity the batch constructor would allocate differently for, or an
/// edgeless batch taking the conv layers' empty-edge branch — run
/// eager instead.
bool PlanAdmits(const ComputePlan& plan,
                const std::vector<const Graph*>& graphs) {
  if (graphs.empty()) return false;
  if (static_cast<int>(graphs[0]->targets.size()) != plan.num_targets) {
    return false;
  }
  std::int64_t edges = 0;
  for (const Graph* g : graphs) edges += g->num_edges();
  return edges > 0;
}

/// Deterministic reference batch at the plan envelope: `num_graphs`
/// graphs totalling `max_nodes` nodes (the first takes the bulk) and
/// `max_edges` directed edges laid along a cycle of the first graph.
std::vector<Graph> MakeReferenceGraphs(int num_graphs, int max_nodes,
                                       int max_edges, int feature_dim,
                                       int num_targets) {
  std::vector<Graph> graphs;
  graphs.reserve(static_cast<size_t>(num_graphs));
  const int bulk = std::max(1, max_nodes - (num_graphs - 1));
  for (int i = 0; i < num_graphs; ++i) {
    Graph g(i == 0 ? bulk : 1, feature_dim);
    g.x.Fill(1.f);
    g.label = 0;
    if (num_targets > 0) g.targets.assign(static_cast<size_t>(num_targets), 0.f);
    graphs.push_back(std::move(g));
  }
  Graph& first = graphs[0];
  for (int e = 0; first.num_edges() < max_edges; ++e) {
    // Walks the cycle with an increasing stride, so edge count is
    // exact even past 2 * bulk edges (duplicates are legal multigraph
    // edges for every plan/normalization path).
    const int stride = 1 + e / std::max(1, bulk);
    first.AddEdge(e % bulk, (e + stride) % bulk);
  }
  return graphs;
}

/// Copies `src` tensors into a module's parameters and buffers
/// (registration order). Caller has already validated counts/shapes.
void ApplyState(const std::vector<Tensor>& params,
                const std::vector<Tensor>& buffers,
                GraphPredictionModel* model) {
  std::vector<Variable> dst_params = model->Parameters();
  OODGNN_CHECK_EQ(params.size(), dst_params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    dst_params[i].mutable_value() = params[i];
  }
  std::vector<Tensor*> dst_buffers = model->Buffers();
  OODGNN_CHECK_EQ(buffers.size(), dst_buffers.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    *dst_buffers[i] = buffers[i];
  }
}

}  // namespace

InferenceEngine::InferenceEngine(const ModelSpec& spec,
                                 const InferenceOptions& options)
    : spec_(spec), options_(options) {
  OODGNN_CHECK_GT(spec_.output_dim, 0);
  OODGNN_CHECK_GT(spec_.encoder.feature_dim, 0);
  OODGNN_CHECK_GE(options_.num_workers, 1);
  OODGNN_CHECK_GE(options_.max_batch_graphs, 1);
  OODGNN_CHECK_GE(options_.max_batch_wait_us, 0);
  replicas_.reserve(static_cast<size_t>(options_.num_workers));
  worker_rngs_.reserve(static_cast<size_t>(options_.num_workers));
  arenas_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    Rng init_rng(kReplicaInitSeed);
    replicas_.push_back(std::make_unique<GraphPredictionModel>(
        spec_.method, spec_.encoder, spec_.output_dim, &init_rng));
    worker_rngs_.push_back(std::make_unique<Rng>(kReplicaInitSeed + i));
    arenas_.push_back(std::make_unique<PlanArena>());
  }
  if (options_.telemetry) {
    obs::MetricsRegistry* registry = options_.telemetry_registry != nullptr
                                         ? options_.telemetry_registry
                                         : &obs::MetricsRegistry::Global();
    collector_ = std::make_unique<obs::SpanCollector>(registry);
    slo_trackers_.reserve(options_.slos.size());
    for (const obs::SloSpec& slo : options_.slos) {
      slo_trackers_.push_back(std::make_unique<obs::SloTracker>(slo, registry));
    }
  }
  // Workers have not started yet, so no lock is needed for the initial
  // compile.
  if (options_.compiled) RecompilePlanLocked();
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&InferenceEngine::WorkerLoop, this, i);
  }
}

InferenceEngine::~InferenceEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void InferenceEngine::SyncFrom(const GraphPredictionModel& model) {
  const std::vector<Variable> src_params = model.Parameters();
  const std::vector<Tensor*> src_buffers = model.Buffers();
  std::vector<Tensor> params;
  params.reserve(src_params.size());
  for (const Variable& p : src_params) params.push_back(p.value());
  std::vector<Tensor> buffers;
  buffers.reserve(src_buffers.size());
  for (const Tensor* b : src_buffers) buffers.push_back(*b);

  std::unique_lock<std::shared_mutex> lock(weights_mu_);
  for (auto& replica : replicas_) {
    ApplyState(params, buffers, replica.get());
  }
  // One writer critical section swaps the weights AND the plan traced
  // against them; a worker can never see new weights with a stale plan
  // (or vice versa).
  if (options_.compiled) RecompilePlanLocked();
}

bool InferenceEngine::LoadModelFile(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(weights_mu_);
  // Validate + apply against the first replica, then mirror its state
  // into the others (reads the file once).
  if (!LoadModelState(path, replicas_[0].get())) return false;
  std::vector<Tensor> params;
  for (const Variable& p : replicas_[0]->Parameters()) {
    params.push_back(p.value());
  }
  std::vector<Tensor> buffers;
  for (const Tensor* b : replicas_[0]->Buffers()) buffers.push_back(*b);
  for (size_t i = 1; i < replicas_.size(); ++i) {
    ApplyState(params, buffers, replicas_[i].get());
  }
  if (options_.compiled) RecompilePlanLocked();
  return true;
}

bool InferenceEngine::LoadCheckpoint(const std::string& path) {
  TrainState state;
  if (!LoadTrainState(path, &state)) return false;
  if (state.method != static_cast<uint32_t>(spec_.method)) {
    OODGNN_LOG(Error) << path << ": checkpoint method " << state.method
                      << " does not match the engine's spec ("
                      << MethodName(spec_.method) << ")";
    return false;
  }
  const std::vector<Variable> expected = replicas_[0]->Parameters();
  if (state.params.size() != expected.size() ||
      state.buffers.size() != replicas_[0]->Buffers().size()) {
    OODGNN_LOG(Error) << path << ": checkpoint has " << state.params.size()
                      << " parameter and " << state.buffers.size()
                      << " buffer tensors; the spec's model expects "
                      << expected.size() << " / "
                      << replicas_[0]->Buffers().size();
    return false;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (!state.params[i].SameShape(expected[i].value())) {
      OODGNN_LOG(Error) << path << ": checkpoint parameter " << i
                        << " shape mismatch";
      return false;
    }
  }
  std::unique_lock<std::shared_mutex> lock(weights_mu_);
  for (auto& replica : replicas_) {
    ApplyState(state.params, state.buffers, replica.get());
  }
  if (options_.compiled) RecompilePlanLocked();
  return true;
}

std::future<Tensor> InferenceEngine::Submit(const Graph& graph) {
  return Submit(graph, nullptr);
}

std::future<Tensor> InferenceEngine::Submit(const Graph& graph,
                                            obs::RequestSpan* span_out) {
  Request request;
  request.graph = &graph;
  request.span_out = span_out;
  request.span.request_id = requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<Tensor> result = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    OODGNN_CHECK(!stop_) << "Submit after engine shutdown";
    request.span.enqueue_us = NowMicros();
    queue_.push_back(std::move(request));
    // Inside the lock so depth updates are totally ordered with the
    // workers' pops — the gauge provably reads 0 once drained.
    if (collector_ != nullptr) {
      collector_->RecordEnqueue(static_cast<std::int64_t>(queue_.size()));
    }
  }
  queue_cv_.notify_one();
  return result;
}

Tensor InferenceEngine::Predict(const Graph& graph) {
  return Submit(graph).get();
}

InferenceStats InferenceEngine::stats() const {
  InferenceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.planned_batches = planned_batches_.load(std::memory_order_relaxed);
  stats.eager_batches = eager_batches_.load(std::memory_order_relaxed);
  stats.diverged_batches = diverged_batches_.load(std::memory_order_relaxed);
  stats.fallback_heap_allocs =
      fallback_heap_allocs_.load(std::memory_order_relaxed);
  stats.plan_recompiles = plan_recompiles_.load(std::memory_order_relaxed);
  stats.arena_bytes = arena_bytes_.load(std::memory_order_relaxed);
  if (collector_ != nullptr) {
    stats.queue_depth = collector_->queue_depth();
    stats.inflight_batches = collector_->inflight_batches();
    stats.queue_wait_us = collector_->queue_wait().GetSummary();
    stats.batch_build_us = collector_->batch_build().GetSummary();
    stats.execute_us = collector_->execute().GetSummary();
    stats.e2e_us = collector_->e2e().GetSummary();
    stats.slos.reserve(slo_trackers_.size());
    for (const auto& tracker : slo_trackers_) {
      stats.slos.push_back({tracker->spec().name, tracker->status()});
    }
  }
  return stats;
}

std::shared_ptr<const ComputePlan> InferenceEngine::plan() const {
  std::shared_lock<std::shared_mutex> lock(weights_mu_);
  return plan_;
}

void InferenceEngine::RecompilePlanLocked() {
  OODGNN_TRACE_SCOPE("serve/plan_compile");
  const int num_graphs = options_.max_batch_graphs;
  const int max_nodes = std::max(
      options_.plan_max_nodes > 0 ? options_.plan_max_nodes : 32 * num_graphs,
      num_graphs);
  const int max_edges = std::max(
      options_.plan_max_edges > 0 ? options_.plan_max_edges : 4 * max_nodes,
      2);
  const std::vector<Graph> ref_graphs =
      MakeReferenceGraphs(num_graphs, max_nodes, max_edges,
                          spec_.encoder.feature_dim, spec_.num_targets);
  std::vector<const Graph*> ptrs;
  ptrs.reserve(ref_graphs.size());
  for (const Graph& g : ref_graphs) ptrs.push_back(&g);

  NoGradGuard no_grad;
  // Warm-up forward through every replica first: module-internal
  // caches created lazily on a replica's first forward (e.g. FactorGCN
  // attention) must already exist when the stream is recorded, or
  // workers' first replays would see extra allocations the plan does
  // not have.
  for (auto& replica : replicas_) {
    const GraphBatch batch = GraphBatch::FromGraphs(ptrs);
    Rng rng(kReplicaInitSeed);
    (void)replica->Predict(batch, /*training=*/false, &rng);
  }

  ComputePlan plan;
  {
    PlanRecordScope record;
    {
      const GraphBatch batch = GraphBatch::FromGraphs(ptrs);
      Rng rng(kReplicaInitSeed);
      const Tensor logits =
          replicas_[0]->Predict(batch, /*training=*/false, &rng).value();
      (void)logits;
    }  // Intermediates die here: their extents become reusable holes.
    plan = record.Finish();
  }
  plan.max_graphs = num_graphs;
  plan.max_nodes = max_nodes;
  plan.max_edges = max_edges;
  plan.num_targets = spec_.num_targets;
  plan_ = std::make_shared<const ComputePlan>(std::move(plan));
  for (auto& arena : arenas_) arena->Resize(plan_->capacity_floats);
  plan_recompiles_.fetch_add(1, std::memory_order_relaxed);
  arena_bytes_.store(plan_->capacity_bytes(), std::memory_order_relaxed);
  if (collector_ != nullptr) {
    collector_->RecordPlanCompile(plan_->capacity_bytes(),
                                  static_cast<std::int64_t>(plan_->slots.size()),
                                  plan_->reuse_ratio());
  }
}

void InferenceEngine::WorkerLoop(int worker_index) {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      // Batching window: a request is in hand; give the queue a bounded
      // chance to fill up to the size cutoff before executing.
      if (!stop_ && options_.max_batch_wait_us > 0 &&
          static_cast<int>(queue_.size()) < options_.max_batch_graphs) {
        queue_cv_.wait_for(
            lock, std::chrono::microseconds(options_.max_batch_wait_us),
            [&] {
              return stop_ || static_cast<int>(queue_.size()) >=
                                  options_.max_batch_graphs;
            });
      }
      const size_t take =
          std::min(queue_.size(),
                   static_cast<size_t>(options_.max_batch_graphs));
      // A sibling may have drained the queue while this worker sat in
      // the batching window; go back to waiting instead of executing
      // an empty batch.
      if (take == 0) continue;
      batch.reserve(take);
      const std::int64_t admit_us = NowMicros();
      for (size_t i = 0; i < take; ++i) {
        queue_.front().span.admit_us = admit_us;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (collector_ != nullptr) {
        collector_->RecordQueueDepth(static_cast<std::int64_t>(queue_.size()));
      }
    }
    // More requests may remain; let a sibling start on them while this
    // worker executes.
    queue_cv_.notify_one();
    ExecuteBatch(worker_index, std::move(batch));
  }
}

void InferenceEngine::ExecuteBatch(int worker_index,
                                   std::vector<Request> batch) {
  OODGNN_TRACE_SCOPE("serve/batch");
  if (collector_ != nullptr) collector_->RecordBatchBegin();
  std::vector<const Graph*> graphs;
  graphs.reserve(batch.size());
  std::int64_t total_nodes = 0;
  for (const Request& request : batch) {
    graphs.push_back(request.graph);
    total_nodes += request.graph->num_nodes();
  }

  Tensor logits;
  std::int64_t execute_start_us = 0;
  {
    std::shared_lock<std::shared_mutex> weights(weights_mu_);
    NoGradGuard no_grad;
    Rng* rng = worker_rngs_[static_cast<size_t>(worker_index)].get();
    const std::string rng_before = rng->SaveState();
    GraphPredictionModel* model =
        replicas_[static_cast<size_t>(worker_index)].get();
    // plan_ / arenas_ are stable while the shared lock is held; the
    // replay scope pins the arena buffer beyond it through the logits'
    // storage.
    const std::shared_ptr<const ComputePlan> plan = plan_;
    if (plan != nullptr && PlanAdmits(*plan, graphs)) {
      PlanReplayScope replay(plan, arenas_[static_cast<size_t>(worker_index)].get());
      {
        // Batch construction is part of the recorded stream: its
        // tensors (features, GCN coefficients, targets) occupy plan
        // slots like any forward intermediate.
        const GraphBatch graph_batch = GraphBatch::FromGraphs(graphs);
        execute_start_us = NowMicros();
        logits = model->Predict(graph_batch, /*training=*/false, rng).value();
      }
      const PlanReplayStats& replay_stats = replay.stats();
      planned_batches_.fetch_add(1, std::memory_order_relaxed);
      if (replay_stats.diverged) {
        diverged_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      if (replay_stats.heap_allocs > 0) {
        fallback_heap_allocs_.fetch_add(replay_stats.heap_allocs,
                                        std::memory_order_relaxed);
      }
      if (collector_ != nullptr) {
        collector_->RecordReplay(
            static_cast<std::int64_t>(replay_stats.peak_floats) *
                static_cast<std::int64_t>(sizeof(float)),
            replay_stats.diverged, replay_stats.heap_allocs);
      }
    } else {
      const GraphBatch graph_batch = GraphBatch::FromGraphs(graphs);
      execute_start_us = NowMicros();
      logits = model->Predict(graph_batch, /*training=*/false, rng).value();
      if (plan != nullptr) {
        eager_batches_.fetch_add(1, std::memory_order_relaxed);
        if (collector_ != nullptr) collector_->RecordEagerBatch();
      }
    }
    OODGNN_CHECK(rng->SaveState() == rng_before)
        << "eval-mode Predict consumed randomness";
  }

  batches_.fetch_add(1, std::memory_order_relaxed);

  OODGNN_CHECK_EQ(logits.rows(), static_cast<int>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    Tensor row(1, logits.cols());
    std::memcpy(row.data(),
                logits.data() + static_cast<size_t>(i) * logits.cols(),
                static_cast<size_t>(logits.cols()) * sizeof(float));
    Request& request = batch[i];
    request.span.execute_us = execute_start_us;
    request.span.done_us = NowMicros();
    // The finished span is recorded (and mirrored to the caller's
    // span_out) before the promise resolves, so totals reconcile the
    // moment future.get() returns.
    if (request.span_out != nullptr) *request.span_out = request.span;
    if (collector_ != nullptr) {
      collector_->RecordSpan(request.span);
      ObserveSlos(request.span);
    }
    request.promise.set_value(std::move(row));
  }
  if (collector_ != nullptr) {
    collector_->RecordBatchEnd(static_cast<std::int64_t>(batch.size()),
                               total_nodes);
  }
}

void InferenceEngine::ObserveSlos(const obs::RequestSpan& span) {
  for (auto& tracker : slo_trackers_) {
    double latency_us = 0.0;
    switch (tracker->spec().phase) {
      case obs::SloPhase::kE2e:
        latency_us = static_cast<double>(span.e2e_us());
        break;
      case obs::SloPhase::kQueueWait:
        latency_us = static_cast<double>(span.queue_wait_us());
        break;
      case obs::SloPhase::kExecute:
        latency_us = static_cast<double>(span.execute_dur_us());
        break;
    }
    if (tracker->Observe(latency_us)) {
      const obs::SloStatus status = tracker->status();
      OODGNN_LOG(Warning) << "SLO '" << tracker->spec().name
                          << "' breached: burn rate " << status.burn_rate
                          << " over the last " << tracker->spec().window
                          << " requests (threshold "
                          << tracker->spec().threshold_us << " us at p"
                          << 100.0 * tracker->spec().quantile << ")";
    }
  }
}

}  // namespace serve
}  // namespace oodgnn
