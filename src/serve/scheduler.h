#ifndef OODGNN_SERVE_SCHEDULER_H_
#define OODGNN_SERVE_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/clock.h"

namespace oodgnn {
namespace serve {

/// Why a request was rejected instead of served. kNone means admitted.
/// Shed requests fail fast: their future carries a ShedError with the
/// reason, and every shed is counted per tenant and per reason in the
/// serve/shed/* metric family — the per-tenant invariant
/// admitted + shed == submitted always holds.
enum class ShedReason {
  kNone = 0,
  kQueueFull,        ///< Admission queue at max_queue.
  kTenantQuota,      ///< The tenant's token bucket was empty.
  kDeadlineExpired,  ///< Deadline passed (or slack below the floor).
  kSloShed,          ///< Burn-rate overload shed of a non-protected priority.
};

const char* ShedReasonName(ShedReason reason);
constexpr int kNumShedReasons = 5;

/// The typed rejection a shed request's future resolves to.
class ShedError : public std::exception {
 public:
  ShedError(ShedReason reason, std::int64_t request_id);

  ShedReason reason() const { return reason_; }
  std::int64_t request_id() const { return request_id_; }
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  ShedReason reason_;
  std::int64_t request_id_;
  std::string message_;
};

/// Per-tenant admission budget as a token bucket: `tokens_per_sec`
/// sustained rate with up to `burst` tokens banked. A tenant without a
/// quota entry is unlimited.
struct TenantQuotaSpec {
  std::string tenant;
  double tokens_per_sec = 0.0;
  double burst = 1.0;
};

/// Admission-control and scheduling policy. The zero-value policy
/// admits everything in FIFO order — exactly the pre-scheduler engine
/// behavior — so existing callers are unaffected unless they opt in.
struct SchedulerOptions {
  /// Queued-request bound; admission beyond it sheds kQueueFull.
  /// 0 = unbounded.
  int max_queue = 0;

  /// Deadline applied to requests that don't carry their own, relative
  /// to enqueue. 0 = no default deadline.
  std::int64_t default_deadline_us = 0;

  /// Fail-fast floor: a request whose deadline is closer than this at
  /// admission is shed immediately (kDeadlineExpired) instead of
  /// queueing doomed work. Already-expired deadlines always fail fast.
  std::int64_t min_deadline_slack_us = 0;

  /// Overload shedding against the SLO burn-rate signal (the engine
  /// feeds its tracker's sliding rate via SetBurnRate): while the
  /// signal exceeds `slo_shed_burn_rate`, requests with priority
  /// strictly greater than `slo_protected_priority` are shed kSloShed
  /// at admission. Protected priorities always get through.
  bool shed_on_slo = false;
  double slo_shed_burn_rate = 1.0;
  int slo_protected_priority = 0;

  /// Token buckets, by tenant name. Tenants not listed are unlimited.
  std::vector<TenantQuotaSpec> tenant_quotas;
};

/// Per-request scheduling attributes (see InferenceEngine::Submit).
struct SubmitOptions {
  /// Tenant the request is accounted (and quota-charged) against.
  /// Empty selects the default tenant, which never has a quota.
  std::string tenant;
  /// Smaller = more urgent; ties dispatch FIFO. Priority 0 is the
  /// default and is SLO-protected under the default policy.
  int priority = 0;
  /// Deadline relative to enqueue; 0 = the policy's default deadline.
  std::int64_t deadline_us = 0;
};

/// One queued entry. The payload pointer is owner-managed (the engine
/// stores its heap-allocated request there); the scheduler never
/// dereferences it.
struct QueuedRequest {
  std::int64_t seq = 0;          ///< Admission order; FIFO tiebreak.
  int priority = 0;
  std::int64_t deadline_us = 0;  ///< Absolute; 0 = none.
  std::int64_t enqueue_us = 0;   ///< Absolute admission stamp.
  int tenant_index = 0;
  void* payload = nullptr;
};

/// Accounting for one tenant. Two conservation invariants hold once
/// the queue is drained:
///
///   dispatched + shed == submitted   (every request ends exactly one
///                                     way: served or shed)
///   admitted + admission sheds == submitted   (every submission either
///                                     entered the queue or failed fast)
///
/// A request shed at dispatch time (its deadline expired while queued)
/// counts in both `admitted` and `shed`, so admitted + shed can exceed
/// submitted only by exactly the number of dispatch-time expiries.
/// With no queued-expiry in play the familiar form
/// admitted + shed == submitted is exact.
struct TenantStats {
  std::string tenant;
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;   ///< Entered the queue.
  std::int64_t dispatched = 0; ///< Popped into a batch and executed.
  std::int64_t shed = 0;       ///< Admission- or dispatch-time sheds.
  std::int64_t shed_by[kNumShedReasons] = {0, 0, 0, 0, 0};
};

struct SchedulerStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t dispatched = 0;
  std::int64_t shed = 0;
  std::int64_t shed_by[kNumShedReasons] = {0, 0, 0, 0, 0};
  std::int64_t queued = 0;  ///< Currently waiting.
  std::vector<TenantStats> tenants;
};

/// Deadline- and priority-aware admission queue with per-tenant token
/// buckets and burn-rate load shedding. Pop order is a strict weak
/// order over (priority, deadline, seq): most urgent first, earlier
/// deadline breaks priority ties (no deadline sorts last), submission
/// order breaks the rest — so dispatch is deterministic for any fixed
/// admission sequence.
///
/// Externally synchronized: the engine guards every call except
/// SetBurnRate/burn_rate (atomic — the SLO observer on worker threads
/// feeds the signal without taking the queue lock) with its queue
/// mutex. Single-threaded use in tests needs no lock at all, which is
/// what makes shed decisions reproducible under a FakeClock.
///
/// Registry metrics (pre-resolved at construction; null registry keeps
/// the scheduler purely local):
///
///   counter  serve/sched/submitted    admission attempts
///   counter  serve/sched/admitted     entered the queue
///   counter  serve/sched/dispatched   popped into batches
///   counter  serve/shed/total         all sheds
///   counter  serve/shed/queue_full    per-reason sheds...
///   counter  serve/shed/quota
///   counter  serve/shed/deadline
///   counter  serve/shed/slo
class Scheduler {
 public:
  /// `clock` drives token-bucket refill and deadline expiry; null
  /// selects Clock::Real().
  Scheduler(const SchedulerOptions& options, obs::MetricsRegistry* registry,
            const Clock* clock = nullptr);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Interns a tenant name (empty = the default tenant, index 0).
  /// Stable for the scheduler's lifetime.
  int TenantIndex(const std::string& tenant);

  /// Admission decision for `request` (whose seq/enqueue stamps are
  /// assigned here). kNone = admitted and queued; any other reason =
  /// rejected, payload untouched, accounting updated. Checks run in a
  /// fixed order — deadline fail-fast, SLO shed, queue bound, quota —
  /// so a request is charged a quota token only when it will actually
  /// be queued.
  ShedReason Admit(QueuedRequest request);

  /// Pops up to `max_items` requests in dispatch order into `batch`.
  /// Requests whose deadline has passed are moved to `expired` instead
  /// (accounted as kDeadlineExpired sheds); the caller fails their
  /// futures. Pops until the queue is empty or `batch` is full.
  void PopBatch(int max_items, std::vector<QueuedRequest>* batch,
                std::vector<QueuedRequest>* expired);

  bool empty() const { return heap_.empty(); }
  std::int64_t size() const { return static_cast<std::int64_t>(heap_.size()); }

  /// Burn-rate overload signal (thread-safe, lock-free).
  void SetBurnRate(double burn_rate) {
    burn_rate_.store(burn_rate, std::memory_order_relaxed);
  }
  double burn_rate() const {
    return burn_rate_.load(std::memory_order_relaxed);
  }

  /// Snapshot of totals and per-tenant accounting (externally
  /// synchronized like the queue operations).
  SchedulerStats stats() const;

  const SchedulerOptions& options() const { return options_; }

 private:
  struct TokenBucket {
    double tokens = 0.0;
    double capacity = 0.0;
    double tokens_per_us = 0.0;
    std::int64_t last_refill_us = 0;
    bool limited = false;  ///< False = unlimited tenant.

    bool TryTake(std::int64_t now_us);
  };

  struct Tenant {
    std::string name;
    TokenBucket bucket;
    TenantStats stats;
  };

  void AccountShed(int tenant_index, ShedReason reason);

  static bool Later(const QueuedRequest& a, const QueuedRequest& b);

  const SchedulerOptions options_;
  const Clock* const clock_;  // never null

  std::vector<QueuedRequest> heap_;  ///< Binary max-heap under Later().
  std::vector<Tenant> tenants_;      ///< Index 0 = default tenant.
  std::int64_t next_seq_ = 0;
  std::int64_t submitted_ = 0;
  std::int64_t admitted_ = 0;
  std::int64_t dispatched_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t shed_by_[kNumShedReasons] = {0, 0, 0, 0, 0};

  std::atomic<double> burn_rate_{0.0};

  // Null when constructed without a registry.
  obs::Counter* submitted_counter_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* dispatched_counter_ = nullptr;
  obs::Counter* shed_total_counter_ = nullptr;
  obs::Counter* shed_reason_counters_[kNumShedReasons] = {nullptr, nullptr,
                                                          nullptr, nullptr,
                                                          nullptr};
};

}  // namespace serve
}  // namespace oodgnn

#endif  // OODGNN_SERVE_SCHEDULER_H_
