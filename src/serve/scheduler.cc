#include "src/serve/scheduler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/util/check.h"

namespace oodgnn {
namespace serve {

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kTenantQuota: return "quota";
    case ShedReason::kDeadlineExpired: return "deadline";
    case ShedReason::kSloShed: return "slo";
  }
  return "unknown";
}

ShedError::ShedError(ShedReason reason, std::int64_t request_id)
    : reason_(reason), request_id_(request_id) {
  message_ = "request " + std::to_string(request_id) + " shed (" +
             ShedReasonName(reason) + ")";
}

bool Scheduler::TokenBucket::TryTake(std::int64_t now_us) {
  if (!limited) return true;
  if (now_us > last_refill_us) {
    tokens = std::min(capacity,
                      tokens + static_cast<double>(now_us - last_refill_us) *
                                   tokens_per_us);
    last_refill_us = now_us;
  }
  if (tokens >= 1.0) {
    tokens -= 1.0;
    return true;
  }
  return false;
}

Scheduler::Scheduler(const SchedulerOptions& options,
                     obs::MetricsRegistry* registry, const Clock* clock)
    : options_(options), clock_(clock != nullptr ? clock : Clock::Real()) {
  OODGNN_CHECK_GE(options_.max_queue, 0);
  OODGNN_CHECK_GE(options_.default_deadline_us, 0);
  OODGNN_CHECK_GE(options_.min_deadline_slack_us, 0);
  // The default tenant exists from the start and is never quota-limited.
  tenants_.push_back(Tenant{});
  tenants_[0].name = "default";
  tenants_[0].stats.tenant = "default";
  const std::int64_t now = clock_->NowMicros();
  for (const TenantQuotaSpec& quota : options_.tenant_quotas) {
    OODGNN_CHECK(!quota.tenant.empty())
        << "tenant quota entries need a tenant name";
    OODGNN_CHECK_GT(quota.tokens_per_sec, 0.0)
        << "tenant '" << quota.tenant << "': tokens_per_sec must be > 0";
    OODGNN_CHECK_GE(quota.burst, 1.0)
        << "tenant '" << quota.tenant << "': burst must be >= 1";
    const int index = TenantIndex(quota.tenant);
    TokenBucket& bucket = tenants_[static_cast<size_t>(index)].bucket;
    OODGNN_CHECK(!bucket.limited)
        << "tenant '" << quota.tenant << "' has two quota entries";
    bucket.limited = true;
    bucket.capacity = quota.burst;
    bucket.tokens = quota.burst;  // Starts full: an initial burst passes.
    bucket.tokens_per_us = quota.tokens_per_sec / 1e6;
    bucket.last_refill_us = now;
  }
  if (registry != nullptr) {
    submitted_counter_ = &registry->GetCounter("serve/sched/submitted");
    admitted_counter_ = &registry->GetCounter("serve/sched/admitted");
    dispatched_counter_ = &registry->GetCounter("serve/sched/dispatched");
    shed_total_counter_ = &registry->GetCounter("serve/shed/total");
    shed_reason_counters_[static_cast<int>(ShedReason::kQueueFull)] =
        &registry->GetCounter("serve/shed/queue_full");
    shed_reason_counters_[static_cast<int>(ShedReason::kTenantQuota)] =
        &registry->GetCounter("serve/shed/quota");
    shed_reason_counters_[static_cast<int>(ShedReason::kDeadlineExpired)] =
        &registry->GetCounter("serve/shed/deadline");
    shed_reason_counters_[static_cast<int>(ShedReason::kSloShed)] =
        &registry->GetCounter("serve/shed/slo");
  }
}

int Scheduler::TenantIndex(const std::string& tenant) {
  if (tenant.empty()) return 0;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].name == tenant) return static_cast<int>(i);
  }
  tenants_.push_back(Tenant{});
  tenants_.back().name = tenant;
  tenants_.back().stats.tenant = tenant;
  return static_cast<int>(tenants_.size() - 1);
}

/// True when `a` dispatches after `b`: worse priority first, then the
/// later (or absent) deadline, then the later submission.
bool Scheduler::Later(const QueuedRequest& a, const QueuedRequest& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  const std::int64_t da = a.deadline_us == 0
                              ? std::numeric_limits<std::int64_t>::max()
                              : a.deadline_us;
  const std::int64_t db = b.deadline_us == 0
                              ? std::numeric_limits<std::int64_t>::max()
                              : b.deadline_us;
  if (da != db) return da > db;
  return a.seq > b.seq;
}

void Scheduler::AccountShed(int tenant_index, ShedReason reason) {
  const int r = static_cast<int>(reason);
  ++shed_;
  ++shed_by_[r];
  TenantStats& tenant = tenants_[static_cast<size_t>(tenant_index)].stats;
  ++tenant.shed;
  ++tenant.shed_by[r];
  if (shed_total_counter_ != nullptr) shed_total_counter_->Increment();
  if (shed_reason_counters_[r] != nullptr) {
    shed_reason_counters_[r]->Increment();
  }
}

ShedReason Scheduler::Admit(QueuedRequest request) {
  OODGNN_CHECK_GE(request.tenant_index, 0);
  OODGNN_CHECK_LT(static_cast<size_t>(request.tenant_index), tenants_.size());
  Tenant& tenant = tenants_[static_cast<size_t>(request.tenant_index)];
  ++submitted_;
  ++tenant.stats.submitted;
  if (submitted_counter_ != nullptr) submitted_counter_->Increment();

  const std::int64_t now = clock_->NowMicros();
  request.enqueue_us = now;
  if (request.deadline_us != 0) {
    // Fail fast on deadlines that have passed or cannot plausibly be
    // met — queueing them only burns capacity on doomed work.
    if (request.deadline_us - now <= options_.min_deadline_slack_us) {
      AccountShed(request.tenant_index, ShedReason::kDeadlineExpired);
      return ShedReason::kDeadlineExpired;
    }
  }
  if (options_.shed_on_slo &&
      request.priority > options_.slo_protected_priority &&
      burn_rate() > options_.slo_shed_burn_rate) {
    AccountShed(request.tenant_index, ShedReason::kSloShed);
    return ShedReason::kSloShed;
  }
  if (options_.max_queue > 0 &&
      static_cast<int>(heap_.size()) >= options_.max_queue) {
    AccountShed(request.tenant_index, ShedReason::kQueueFull);
    return ShedReason::kQueueFull;
  }
  // Quota last: a token is only charged for requests that actually
  // enter the queue.
  if (!tenant.bucket.TryTake(now)) {
    AccountShed(request.tenant_index, ShedReason::kTenantQuota);
    return ShedReason::kTenantQuota;
  }

  request.seq = next_seq_++;
  ++admitted_;
  ++tenant.stats.admitted;
  if (admitted_counter_ != nullptr) admitted_counter_->Increment();
  heap_.push_back(request);
  std::push_heap(heap_.begin(), heap_.end(), Later);
  return ShedReason::kNone;
}

void Scheduler::PopBatch(int max_items, std::vector<QueuedRequest>* batch,
                         std::vector<QueuedRequest>* expired) {
  const std::int64_t now = clock_->NowMicros();
  while (static_cast<int>(batch->size()) < max_items && !heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    QueuedRequest request = heap_.back();
    heap_.pop_back();
    if (request.deadline_us != 0 && request.deadline_us <= now) {
      AccountShed(request.tenant_index, ShedReason::kDeadlineExpired);
      expired->push_back(request);
      continue;
    }
    ++dispatched_;
    ++tenants_[static_cast<size_t>(request.tenant_index)].stats.dispatched;
    if (dispatched_counter_ != nullptr) dispatched_counter_->Increment();
    batch->push_back(request);
  }
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats stats;
  stats.submitted = submitted_;
  stats.admitted = admitted_;
  stats.dispatched = dispatched_;
  stats.shed = shed_;
  for (int r = 0; r < kNumShedReasons; ++r) stats.shed_by[r] = shed_by_[r];
  stats.queued = static_cast<std::int64_t>(heap_.size());
  stats.tenants.reserve(tenants_.size());
  for (const Tenant& tenant : tenants_) stats.tenants.push_back(tenant.stats);
  return stats;
}

}  // namespace serve
}  // namespace oodgnn
