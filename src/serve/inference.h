#ifndef OODGNN_SERVE_INFERENCE_H_
#define OODGNN_SERVE_INFERENCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/gnn/encoder.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/graph.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/serve/scheduler.h"
#include "src/serve/version.h"
#include "src/tensor/arena.h"
#include "src/tensor/exec_plan.h"
#include "src/tensor/quant.h"
#include "src/tensor/tensor.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace serve {

/// Everything needed to reconstruct a GraphPredictionModel shell whose
/// weights will be overwritten from a snapshot: the serialized formats
/// store tensors in registration order, so the architecture must match
/// exactly.
struct ModelSpec {
  Method method = Method::kGin;
  EncoderConfig encoder;
  int output_dim = 0;
  /// Vector-target arity of the graphs this engine will serve (the
  /// Graph::targets length; 0 for class-label-only graphs). Batch
  /// construction allocates targets/mask tensors only when nonzero, so
  /// a compiled plan is specific to one arity; batches with a
  /// different arity run eager.
  int num_targets = 0;
};

/// Int8 weight quantization policy for the engine (training is never
/// affected — quantization happens at publish time, on the engine's
/// own copy of the weights).
enum class QuantizeMode {
  /// Follow the process-wide toggle (--quantize / OODGNN_QUANTIZE),
  /// sampled at every publish — flipping the toggle between SyncFrom
  /// calls rolls quantization on or off like any weight rollout.
  kFollowProcess,
  kOff,
  kOn,
};

/// Serving policy. Admission is continuous-batching style: Submit()
/// pushes into one central scheduler queue and every worker tops up
/// its in-flight slot budget (`max_inflight`) from that queue each
/// iteration, so a big batch on one worker never blocks short requests
/// from dispatching on another. `max_batch_wait_us` keeps the classic
/// size-or-timeout coalescing window on top: a worker holding fewer
/// than `max_batch_graphs` queued requests waits at most that long for
/// more before executing what it has.
struct InferenceOptions {
  int num_workers = 1;
  int max_batch_graphs = 32;
  int max_batch_wait_us = 200;

  /// Per-worker in-flight slot budget: the most graphs one worker pops
  /// into a single execution. 0 = auto (max_batch_graphs). The plan
  /// envelope is recorded at this budget, so full top-ups replay from
  /// the arena.
  int max_inflight = 0;

  /// Admission control: priorities, deadlines, per-tenant token-bucket
  /// quotas and SLO burn-rate load shedding (src/serve/scheduler.h).
  /// The default policy admits everything in FIFO order — exactly the
  /// historical engine behavior.
  SchedulerOptions scheduler;

  /// Time source for span stamps, deadlines, quota refill and SLO
  /// windows. Null = Clock::Real(). Tests inject a FakeClock to make
  /// deadline expiry and shed decisions reproducible without sleeping.
  const Clock* clock = nullptr;

  /// Plan-then-execute mode (DESIGN.md §13): trace one reference
  /// forward at the envelope batch shape into a static ComputePlan and
  /// serve every same-structured batch from a per-worker preallocated
  /// arena with zero steady-state heap allocation. Batches outside the
  /// envelope (or structurally different, e.g. edgeless) transparently
  /// run eager. Defaults to the process-wide toggle
  /// (--compiled / OODGNN_COMPILED).
  bool compiled = CompiledEnabled();

  /// Reference-batch envelope the plan is recorded at: total nodes and
  /// directed edges across the batch. 0 = auto (scaled from the slot
  /// budget). Batches larger than the envelope still execute
  /// correctly — oversized intermediates fall back to the heap
  /// block-by-block.
  int plan_max_nodes = 0;
  int plan_max_edges = 0;

  /// Q8_0 weight quantization (DESIGN.md §16): every publish quantizes
  /// the matrix parameters to per-32-element int8 blocks, writes the
  /// dequantized image back as the published fp32 weights (so all
  /// non-matmul consumers agree with the quantized matmuls exactly),
  /// and serves matmuls from the int8 blocks — ~4x less weight
  /// traffic per matmul at a bounded, tested accuracy cost. Outputs
  /// are NOT bitwise equal to fp32 serving; tests/quant_test.cc pins
  /// the tolerance for every model method.
  QuantizeMode quantize = QuantizeMode::kFollowProcess;

  /// Request-span telemetry (src/obs/span.h): per-phase latency
  /// histograms, queue/in-flight gauges and SLO tracking, always on by
  /// default. All metric handles are resolved at engine construction;
  /// the per-request cost is a few clock reads, relaxed atomics and a
  /// histogram bucket increment — no strings, maps, or heap, so the
  /// compiled path's zero-allocation guarantee holds with telemetry
  /// on. Engine outputs are bitwise identical either way (pinned by
  /// tests/serve_telemetry_test.cc). Telemetry also feeds the SLO
  /// burn-rate signal the scheduler sheds on; with telemetry off,
  /// shed_on_slo is inert.
  bool telemetry = true;

  /// Registry the span collector, SLO trackers, scheduler and version
  /// manager publish to; null means MetricsRegistry::Global() (what
  /// exporters scrape). Tests pass a private registry for per-engine
  /// accounting.
  obs::MetricsRegistry* telemetry_registry = nullptr;

  /// Latency objectives evaluated on every finished request (ignored
  /// when telemetry is off). Default: p99 end-to-end under 100 ms over
  /// 512-request windows. Breached windows are counted in stats() and
  /// logged at Warning.
  std::vector<obs::SloSpec> slos = {obs::SloSpec{}};
};

/// One tracked objective's spec name plus its live accounting.
struct SloReport {
  std::string name;
  obs::SloStatus status;
};

/// Aggregate counters since construction (atomic snapshots; safe to
/// read while serving).
struct InferenceStats {
  std::int64_t requests = 0;  ///< Graphs submitted (admitted or shed).
  std::int64_t batches = 0;   ///< Micro-batches executed.

  // Compiled-execution counters (all zero when options.compiled is
  // off).
  std::int64_t planned_batches = 0;   ///< Served through a replay scope.
  std::int64_t eager_batches = 0;     ///< Batch profile failed the plan pre-check.
  std::int64_t diverged_batches = 0;  ///< Replay left the recorded stream.
  /// Heap blocks allocated inside replay scopes (0 in steady state —
  /// the zero-allocation serving guarantee the tests pin).
  std::int64_t fallback_heap_allocs = 0;
  std::int64_t plan_recompiles = 0;   ///< Compiles (construction + syncs).
  std::int64_t arena_bytes = 0;       ///< Per-worker arena capacity.

  // Request-span telemetry (all zero / empty when options.telemetry is
  // off). Histogram summaries carry count/sum/min/max plus
  // bucket-approximate p50/p95/p99.
  double queue_depth = 0.0;       ///< Queued requests right now.
  double inflight_batches = 0.0;  ///< Micro-batches executing right now.
  obs::StreamingHistogram::Summary queue_wait_us;   ///< Enqueue → admit.
  obs::StreamingHistogram::Summary batch_build_us;  ///< Admit → tensors.
  obs::StreamingHistogram::Summary execute_us;      ///< Tensors → done.
  obs::StreamingHistogram::Summary e2e_us;          ///< Enqueue → done.
  std::vector<SloReport> slos;    ///< One entry per tracked objective.

  /// Admission/shed accounting (totals and per tenant). The
  /// conservation invariants on TenantStats hold here too.
  SchedulerStats scheduler;

  // Versioned-rollout accounting.
  std::int64_t weight_version = 0;  ///< Latest published version.
  std::int64_t rollouts = 0;        ///< Publishes (ctor + syncs/loads).
  std::int64_t rollbacks = 0;
  /// Graphs served per weight version; sums to the graphs executed.
  std::vector<VersionCount> versions;
};

/// Admission outcome of one Submit. `future` is always valid: it
/// resolves to the logits row when admitted, or throws ShedError (with
/// the reason below) when the request was shed — at admission or later
/// at dispatch when its deadline expired in the queue.
struct SubmitResult {
  bool admitted = false;
  ShedReason shed = ShedReason::kNone;  ///< Admission-time reason only.
  std::int64_t request_id = 0;
  std::future<Tensor> future;
};

/// Grad-free serving front end over the existing kernel backend.
///
/// Threads call Submit() concurrently; requests enter a central
/// deadline/priority-aware scheduler queue, and worker threads
/// continuously top up their slot budgets from it, executing dynamic
/// micro-batches under NoGradGuard. Because every forward op is
/// row-wise or a within-graph segment reduction with a fixed
/// accumulation order, a graph's output is bitwise independent of
/// which other graphs share its micro-batch — engine outputs are
/// bitwise identical to a tape-based eval forward of the same model,
/// regardless of batching, thread count, or submission order (the
/// equivalence suite in tests/serve_test.cc pins this; the scheduler
/// only changes which requests run and in what order, never their
/// results).
///
/// Weights are versioned (src/serve/version.h): SyncFrom /
/// LoadModelFile / LoadCheckpoint publish an immutable snapshot (with
/// the plan recorded against it), and each worker adopts the newest
/// version at its own batch boundary — a hot rollout staggers across
/// workers with no stop-the-world, and RollbackWeights() un-publishes
/// a bad one. All replicas are constructed from one fixed seed, so
/// they are bitwise identical to each other at all times, even before
/// any sync.
class InferenceEngine {
 public:
  InferenceEngine(const ModelSpec& spec, const InferenceOptions& options);

  /// Drains outstanding requests, then joins the workers.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Publishes `model`'s parameters and buffers as a new weight
  /// version. Safe while requests are in flight: each worker adopts the
  /// new version at its next batch boundary (in-flight batches finish
  /// on the version they started with).
  void SyncFrom(const GraphPredictionModel& model);

  /// Publishes a SaveModelState snapshot (parameters + buffers) as a
  /// new weight version. Returns false (nothing published) on any
  /// validation failure.
  bool LoadModelFile(const std::string& path);

  /// Publishes the model parameters and buffers out of a full training
  /// checkpoint written by SaveTrainState, validating that the
  /// checkpoint's method matches the spec. Returns false (nothing
  /// published) on mismatch or corruption.
  bool LoadCheckpoint(const std::string& path);

  /// Re-publishes the previous weight version (staggered adoption,
  /// like any rollout). Returns false when there is nothing to roll
  /// back to.
  bool RollbackWeights();

  /// Enqueues one graph for prediction. The returned future resolves to
  /// the 1 x output_dim logits row — or throws ShedError if the policy
  /// shed the request. The caller must keep `graph` alive until the
  /// future is ready. Thread-safe.
  std::future<Tensor> Submit(const Graph& graph);

  /// Submit with span capture: when `span_out` is non-null, the
  /// request's finished RequestSpan (all four phase timestamps plus
  /// the serving weight version) is copied into it before the future
  /// is fulfilled, so after future.get() returns the span is complete
  /// and race-free. The load generator uses this for exact client-side
  /// percentiles; the engine's own histograms are factor-of-2 bucket
  /// approximations.
  std::future<Tensor> Submit(const Graph& graph, obs::RequestSpan* span_out);

  /// Full-control submit: tenant, priority and deadline per request.
  /// The admission decision is made synchronously (SubmitResult.shed
  /// says why a request was rejected); an admitted request can still
  /// be shed later if its deadline expires while queued, in which case
  /// its future throws ShedError(kDeadlineExpired).
  SubmitResult Submit(const Graph& graph, const SubmitOptions& submit_options,
                      obs::RequestSpan* span_out = nullptr);

  /// Submit + wait: single-graph blocking convenience.
  Tensor Predict(const Graph& graph);

  InferenceStats stats() const;

  const ModelSpec& spec() const { return spec_; }
  const InferenceOptions& options() const { return options_; }

  /// The plan recorded against the current weight version (null when
  /// options.compiled is off). Safe while serving.
  std::shared_ptr<const ComputePlan> plan() const;

 private:
  struct Request {
    const Graph* graph;
    std::promise<Tensor> promise;
    obs::RequestSpan span;
    /// Caller-owned mirror for the finished span (null for plain
    /// Submit). Written before the promise is fulfilled.
    obs::RequestSpan* span_out = nullptr;
  };

  void WorkerLoop(int worker_index);
  void ExecuteBatch(int worker_index,
                    std::vector<std::unique_ptr<Request>> batch);

  /// Fails a shed request's future with ShedError (stamping and
  /// mirroring its span first). Shed requests are not fed to the SLO
  /// trackers: sheds are admission outcomes, not latency observations,
  /// and feeding them would couple shedding back into the burn-rate
  /// signal that causes it.
  void FailShed(std::unique_ptr<Request> request, ShedReason reason);

  /// Copies the newest published snapshot (weights + plan + arena
  /// size) into worker `worker_index`'s private replica if its version
  /// moved. Called by that worker only, at batch boundaries.
  void AdoptCurrentVersion(int worker_index);

  /// Installs `snapshot` as worker `worker_index`'s serving state:
  /// copies weights into the replica (skippable at construction when
  /// the replica is already bitwise identical), sizes the arena for
  /// the snapshot's plan, and rebuilds the worker's quantized-weight
  /// map keyed on the replica's own parameter storage. The snapshot is
  /// pinned so the map's QuantizedTensor targets stay alive.
  void AdoptSnapshot(int worker_index,
                     const std::shared_ptr<const WeightSnapshot>& snapshot,
                     bool copy_weights);

  /// Feeds one finished span to every SLO tracker (selecting the phase
  /// duration each spec targets), logs breached windows, and publishes
  /// the worst current burn rate to the scheduler's shed signal.
  void ObserveSlos(const obs::RequestSpan& span);

  /// Traces the reference forward on the master model into a fresh
  /// plan, recorded under `dtype` weights (`qmap` routes the master's
  /// matmuls through its int8 blocks when quantizing, so the stream
  /// contains matmul_quant dispatches exactly like the replays will).
  /// Caller holds master_mu_ (or workers have not started). Recording
  /// installs a thread-local allocation sink, so concurrent worker
  /// replays are unaffected.
  std::shared_ptr<const ComputePlan> CompilePlanLocked(
      WeightDtype dtype, const QuantizedWeightMap* qmap);

  /// Collects the master model's state (plus a fresh plan when
  /// compiled) and publishes it as a new weight version. Caller holds
  /// master_mu_.
  void PublishFromMasterLocked();

  const ModelSpec spec_;
  const InferenceOptions options_;
  const Clock* const clock_;  // never null
  /// Most graphs a worker executes at once (max_inflight, defaulted).
  int slot_budget_ = 0;

  /// One model per worker: FactorGCN caches attention inside Forward,
  /// so a shared model would race under concurrent execution. After
  /// construction each replica (and its rng, arena, plan and version
  /// slot below) is touched only by its own worker thread; publishers
  /// never write them — workers pull from versions_ instead.
  std::vector<std::unique_ptr<GraphPredictionModel>> replicas_;
  /// Eval-mode forwards draw nothing, but Predict's signature wants an
  /// Rng; each worker passes its own so a violation cannot race.
  std::vector<std::unique_ptr<Rng>> worker_rngs_;
  std::vector<std::unique_ptr<PlanArena>> arenas_;
  std::vector<std::shared_ptr<const ComputePlan>> worker_plans_;
  std::vector<std::int64_t> worker_versions_;
  /// The snapshot each worker last adopted — pins the QuantizedTensor
  /// blocks its qmap points into (and carries the serving dtype).
  std::vector<std::shared_ptr<const WeightSnapshot>> worker_snapshots_;
  /// Replica-parameter storage -> int8 block image, rebuilt on every
  /// quantized adoption; empty while serving fp32.
  std::vector<QuantizedWeightMap> worker_qmaps_;

  /// Master copy weight publishers (SyncFrom / Load*) validate against
  /// and record plans on. Never used to serve requests.
  std::unique_ptr<GraphPredictionModel> master_;  // guarded by master_mu_
  std::mutex master_mu_;

  WeightVersionManager versions_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::unique_ptr<Scheduler> scheduler_;  // guarded by queue_mu_
  bool stop_ = false;                     // guarded by queue_mu_

  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> planned_batches_{0};
  std::atomic<std::int64_t> eager_batches_{0};
  std::atomic<std::int64_t> diverged_batches_{0};
  std::atomic<std::int64_t> fallback_heap_allocs_{0};
  std::atomic<std::int64_t> plan_recompiles_{0};
  std::atomic<std::int64_t> arena_bytes_{0};

  /// Null when options.telemetry is off. The collector's handles point
  /// into options.telemetry_registry (or the global registry), which
  /// must outlive the engine.
  std::unique_ptr<obs::SpanCollector> collector_;
  /// One tracker per options.slos entry; empty when telemetry is off.
  std::vector<std::unique_ptr<obs::SloTracker>> slo_trackers_;

  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace oodgnn

#endif  // OODGNN_SERVE_INFERENCE_H_
