#ifndef OODGNN_SERVE_INFERENCE_H_
#define OODGNN_SERVE_INFERENCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/gnn/encoder.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/graph.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/tensor/arena.h"
#include "src/tensor/exec_plan.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace serve {

/// Everything needed to reconstruct a GraphPredictionModel shell whose
/// weights will be overwritten from a snapshot: the serialized formats
/// store tensors in registration order, so the architecture must match
/// exactly.
struct ModelSpec {
  Method method = Method::kGin;
  EncoderConfig encoder;
  int output_dim = 0;
  /// Vector-target arity of the graphs this engine will serve (the
  /// Graph::targets length; 0 for class-label-only graphs). Batch
  /// construction allocates targets/mask tensors only when nonzero, so
  /// a compiled plan is specific to one arity; batches with a
  /// different arity run eager.
  int num_targets = 0;
};

/// Micro-batching policy. A worker that picks up a request waits at
/// most `max_batch_wait_us` for the queue to reach `max_batch_graphs`
/// before executing whatever has accumulated — the classic
/// size-or-timeout cutoff. With `num_workers > 1`, several micro-batches
/// execute concurrently (each worker owns a private model replica).
struct InferenceOptions {
  int num_workers = 1;
  int max_batch_graphs = 32;
  int max_batch_wait_us = 200;

  /// Plan-then-execute mode (DESIGN.md §13): trace one reference
  /// forward at the envelope batch shape into a static ComputePlan and
  /// serve every same-structured batch from a per-worker preallocated
  /// arena with zero steady-state heap allocation. Batches outside the
  /// envelope (or structurally different, e.g. edgeless) transparently
  /// run eager. Defaults to the process-wide toggle
  /// (--compiled / OODGNN_COMPILED).
  bool compiled = CompiledEnabled();

  /// Reference-batch envelope the plan is recorded at: total nodes and
  /// directed edges across the batch. 0 = auto (scaled from
  /// max_batch_graphs). Batches larger than the envelope still execute
  /// correctly — oversized intermediates fall back to the heap
  /// block-by-block.
  int plan_max_nodes = 0;
  int plan_max_edges = 0;

  /// Request-span telemetry (src/obs/span.h): per-phase latency
  /// histograms, queue/in-flight gauges and SLO tracking, always on by
  /// default. All metric handles are resolved at engine construction;
  /// the per-request cost is a few clock reads, relaxed atomics and a
  /// histogram bucket increment — no strings, maps, or heap, so the
  /// compiled path's zero-allocation guarantee holds with telemetry
  /// on. Engine outputs are bitwise identical either way (pinned by
  /// tests/serve_telemetry_test.cc).
  bool telemetry = true;

  /// Registry the span collector and SLO trackers publish to; null
  /// means MetricsRegistry::Global() (what exporters scrape). Tests
  /// pass a private registry for per-engine accounting.
  obs::MetricsRegistry* telemetry_registry = nullptr;

  /// Latency objectives evaluated on every finished request (ignored
  /// when telemetry is off). Default: p99 end-to-end under 100 ms over
  /// 512-request windows. Breached windows are counted in stats() and
  /// logged at Warning.
  std::vector<obs::SloSpec> slos = {obs::SloSpec{}};
};

/// One tracked objective's spec name plus its live accounting.
struct SloReport {
  std::string name;
  obs::SloStatus status;
};

/// Aggregate counters since construction (atomic snapshots; safe to
/// read while serving).
struct InferenceStats {
  std::int64_t requests = 0;  ///< Graphs submitted.
  std::int64_t batches = 0;   ///< Micro-batches executed.

  // Compiled-execution counters (all zero when options.compiled is
  // off).
  std::int64_t planned_batches = 0;   ///< Served through a replay scope.
  std::int64_t eager_batches = 0;     ///< Batch profile failed the plan pre-check.
  std::int64_t diverged_batches = 0;  ///< Replay left the recorded stream.
  /// Heap blocks allocated inside replay scopes (0 in steady state —
  /// the zero-allocation serving guarantee the tests pin).
  std::int64_t fallback_heap_allocs = 0;
  std::int64_t plan_recompiles = 0;   ///< Compiles (construction + syncs).
  std::int64_t arena_bytes = 0;       ///< Per-worker arena capacity.

  // Request-span telemetry (all zero / empty when options.telemetry is
  // off). Histogram summaries carry count/sum/min/max plus
  // bucket-approximate p50/p95/p99.
  double queue_depth = 0.0;       ///< Queued requests right now.
  double inflight_batches = 0.0;  ///< Micro-batches executing right now.
  obs::StreamingHistogram::Summary queue_wait_us;   ///< Enqueue → admit.
  obs::StreamingHistogram::Summary batch_build_us;  ///< Admit → tensors.
  obs::StreamingHistogram::Summary execute_us;      ///< Tensors → done.
  obs::StreamingHistogram::Summary e2e_us;          ///< Enqueue → done.
  std::vector<SloReport> slos;    ///< One entry per tracked objective.
};

/// Grad-free serving front end over the existing kernel backend.
///
/// Threads call Submit() concurrently; requests coalesce into dynamic
/// micro-batches executed under NoGradGuard on worker threads, and each
/// caller gets its graph's logits row back through a future. Because
/// every forward op is row-wise or a within-graph segment reduction
/// with a fixed accumulation order, a graph's output is bitwise
/// independent of which other graphs share its micro-batch — engine
/// outputs are bitwise identical to a tape-based eval forward of the
/// same model, regardless of batching, thread count, or submission
/// order (the equivalence suite in tests/serve_test.cc pins this).
///
/// Weights come from SyncFrom (a live model), LoadModelFile (a
/// SaveModelState snapshot: parameters + batch-norm running
/// statistics), or LoadCheckpoint (a training-run TrainState). All
/// replicas are constructed from one fixed seed, so they are bitwise
/// identical to each other at all times, even before any sync.
class InferenceEngine {
 public:
  InferenceEngine(const ModelSpec& spec, const InferenceOptions& options);

  /// Drains outstanding requests, then joins the workers.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Copies parameters and buffers from `model` into every replica.
  /// Takes the weight lock exclusively, so it is safe while requests
  /// are in flight (in-flight batches finish on the old weights).
  void SyncFrom(const GraphPredictionModel& model);

  /// Loads a SaveModelState snapshot (parameters + buffers) into every
  /// replica. Returns false (replicas untouched) on any validation
  /// failure.
  bool LoadModelFile(const std::string& path);

  /// Loads the model parameters and buffers out of a full training
  /// checkpoint written by SaveTrainState, validating that the
  /// checkpoint's method matches the spec. Returns false (replicas
  /// untouched) on mismatch or corruption.
  bool LoadCheckpoint(const std::string& path);

  /// Enqueues one graph for prediction. The returned future resolves to
  /// the 1 x output_dim logits row. The caller must keep `graph` alive
  /// until the future is ready. Thread-safe.
  std::future<Tensor> Submit(const Graph& graph);

  /// Submit with span capture: when `span_out` is non-null, the
  /// request's finished RequestSpan (all four phase timestamps) is
  /// copied into it before the future is fulfilled, so after
  /// future.get() returns the span is complete and race-free. The
  /// load generator uses this for exact client-side percentiles; the
  /// engine's own histograms are factor-of-2 bucket approximations.
  std::future<Tensor> Submit(const Graph& graph, obs::RequestSpan* span_out);

  /// Submit + wait: single-graph blocking convenience.
  Tensor Predict(const Graph& graph);

  InferenceStats stats() const;

  const ModelSpec& spec() const { return spec_; }
  const InferenceOptions& options() const { return options_; }

  /// The currently compiled plan (null when options.compiled is off).
  /// Takes the weight lock shared; safe while serving.
  std::shared_ptr<const ComputePlan> plan() const;

 private:
  struct Request {
    const Graph* graph;
    std::promise<Tensor> promise;
    obs::RequestSpan span;
    /// Caller-owned mirror for the finished span (null for plain
    /// Submit). Written before the promise is fulfilled.
    obs::RequestSpan* span_out = nullptr;
  };

  void WorkerLoop(int worker_index);
  void ExecuteBatch(int worker_index, std::vector<Request> batch);

  /// Feeds one finished span to every SLO tracker (selecting the phase
  /// duration each spec targets) and logs breached windows.
  void ObserveSlos(const obs::RequestSpan& span);

  /// (Re)traces the reference forward into plan_ and resizes every
  /// worker arena. Caller holds weights_mu_ exclusively (or no workers
  /// are running yet), so the plan and the weights it was traced
  /// against swap as one unit.
  void RecompilePlanLocked();

  const ModelSpec spec_;
  const InferenceOptions options_;

  /// One model per worker: FactorGCN caches attention inside Forward,
  /// so a shared model would race under concurrent execution. Replicas
  /// are kept bitwise identical by the sync/load paths.
  std::vector<std::unique_ptr<GraphPredictionModel>> replicas_;
  /// Eval-mode forwards draw nothing, but Predict's signature wants an
  /// Rng; each worker passes its own so a violation cannot race.
  std::vector<std::unique_ptr<Rng>> worker_rngs_;

  /// Workers hold this shared during a forward; weight updates
  /// (SyncFrom / Load*) hold it exclusively. The compiled plan and the
  /// worker arenas are guarded by the same lock: a sync swaps weights
  /// and the plan traced against them atomically (a forward that
  /// started on the old weights pins the old arena buffer through its
  /// tensors, so the swap cannot invalidate it).
  mutable std::shared_mutex weights_mu_;

  std::shared_ptr<const ComputePlan> plan_;        // guarded by weights_mu_
  std::vector<std::unique_ptr<PlanArena>> arenas_; // guarded by weights_mu_

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;  // guarded by queue_mu_
  bool stop_ = false;          // guarded by queue_mu_

  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> planned_batches_{0};
  std::atomic<std::int64_t> eager_batches_{0};
  std::atomic<std::int64_t> diverged_batches_{0};
  std::atomic<std::int64_t> fallback_heap_allocs_{0};
  std::atomic<std::int64_t> plan_recompiles_{0};
  std::atomic<std::int64_t> arena_bytes_{0};

  /// Null when options.telemetry is off. The collector's handles point
  /// into options.telemetry_registry (or the global registry), which
  /// must outlive the engine.
  std::unique_ptr<obs::SpanCollector> collector_;
  /// One tracker per options.slos entry; empty when telemetry is off.
  std::vector<std::unique_ptr<obs::SloTracker>> slo_trackers_;

  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace oodgnn

#endif  // OODGNN_SERVE_INFERENCE_H_
