file(REMOVE_RECURSE
  "CMakeFiles/weight_semantics_test.dir/weight_semantics_test.cc.o"
  "CMakeFiles/weight_semantics_test.dir/weight_semantics_test.cc.o.d"
  "weight_semantics_test"
  "weight_semantics_test.pdb"
  "weight_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weight_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
