# Empty dependencies file for weight_semantics_test.
# This may be replaced when dependencies are built.
