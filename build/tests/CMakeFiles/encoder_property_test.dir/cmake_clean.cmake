file(REMOVE_RECURSE
  "CMakeFiles/encoder_property_test.dir/encoder_property_test.cc.o"
  "CMakeFiles/encoder_property_test.dir/encoder_property_test.cc.o.d"
  "encoder_property_test"
  "encoder_property_test.pdb"
  "encoder_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoder_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
