file(REMOVE_RECURSE
  "CMakeFiles/dataset_property_test.dir/dataset_property_test.cc.o"
  "CMakeFiles/dataset_property_test.dir/dataset_property_test.cc.o.d"
  "dataset_property_test"
  "dataset_property_test.pdb"
  "dataset_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
