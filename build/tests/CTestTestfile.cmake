# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_property_test[1]_include.cmake")
include("/root/repo/build/tests/dependence_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/encoder_property_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/infra_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/weight_semantics_test[1]_include.cmake")
