file(REMOVE_RECURSE
  "CMakeFiles/fig3_training_dynamics.dir/fig3_training_dynamics.cc.o"
  "CMakeFiles/fig3_training_dynamics.dir/fig3_training_dynamics.cc.o.d"
  "fig3_training_dynamics"
  "fig3_training_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_training_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
