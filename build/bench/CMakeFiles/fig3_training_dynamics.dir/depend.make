# Empty dependencies file for fig3_training_dynamics.
# This may be replaced when dependencies are built.
