file(REMOVE_RECURSE
  "CMakeFiles/table_ablation_estimator.dir/table_ablation_estimator.cc.o"
  "CMakeFiles/table_ablation_estimator.dir/table_ablation_estimator.cc.o.d"
  "table_ablation_estimator"
  "table_ablation_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_ablation_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
