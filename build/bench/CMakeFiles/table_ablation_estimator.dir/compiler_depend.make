# Empty compiler generated dependencies file for table_ablation_estimator.
# This may be replaced when dependencies are built.
