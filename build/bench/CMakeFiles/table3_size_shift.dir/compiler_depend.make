# Empty compiler generated dependencies file for table3_size_shift.
# This may be replaced when dependencies are built.
