file(REMOVE_RECURSE
  "CMakeFiles/table3_size_shift.dir/table3_size_shift.cc.o"
  "CMakeFiles/table3_size_shift.dir/table3_size_shift.cc.o.d"
  "table3_size_shift"
  "table3_size_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_size_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
