file(REMOVE_RECURSE
  "CMakeFiles/fig5to7_hyperparams.dir/fig5to7_hyperparams.cc.o"
  "CMakeFiles/fig5to7_hyperparams.dir/fig5to7_hyperparams.cc.o.d"
  "fig5to7_hyperparams"
  "fig5to7_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5to7_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
