# Empty compiler generated dependencies file for fig5to7_hyperparams.
# This may be replaced when dependencies are built.
