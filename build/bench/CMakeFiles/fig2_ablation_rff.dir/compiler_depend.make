# Empty compiler generated dependencies file for fig2_ablation_rff.
# This may be replaced when dependencies are built.
