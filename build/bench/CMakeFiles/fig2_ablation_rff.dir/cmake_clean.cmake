file(REMOVE_RECURSE
  "CMakeFiles/fig2_ablation_rff.dir/fig2_ablation_rff.cc.o"
  "CMakeFiles/fig2_ablation_rff.dir/fig2_ablation_rff.cc.o.d"
  "fig2_ablation_rff"
  "fig2_ablation_rff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ablation_rff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
