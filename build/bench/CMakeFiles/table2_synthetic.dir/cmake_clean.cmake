file(REMOVE_RECURSE
  "CMakeFiles/table2_synthetic.dir/table2_synthetic.cc.o"
  "CMakeFiles/table2_synthetic.dir/table2_synthetic.cc.o.d"
  "table2_synthetic"
  "table2_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
