# Empty dependencies file for table2_synthetic.
# This may be replaced when dependencies are built.
