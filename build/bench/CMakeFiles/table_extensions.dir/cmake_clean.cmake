file(REMOVE_RECURSE
  "CMakeFiles/table_extensions.dir/table_extensions.cc.o"
  "CMakeFiles/table_extensions.dir/table_extensions.cc.o.d"
  "table_extensions"
  "table_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
