# Empty compiler generated dependencies file for table_extensions.
# This may be replaced when dependencies are built.
