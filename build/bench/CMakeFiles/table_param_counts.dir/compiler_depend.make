# Empty compiler generated dependencies file for table_param_counts.
# This may be replaced when dependencies are built.
