file(REMOVE_RECURSE
  "CMakeFiles/table_param_counts.dir/table_param_counts.cc.o"
  "CMakeFiles/table_param_counts.dir/table_param_counts.cc.o.d"
  "table_param_counts"
  "table_param_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_param_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
