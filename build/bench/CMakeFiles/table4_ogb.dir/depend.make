# Empty dependencies file for table4_ogb.
# This may be replaced when dependencies are built.
