file(REMOVE_RECURSE
  "CMakeFiles/table4_ogb.dir/table4_ogb.cc.o"
  "CMakeFiles/table4_ogb.dir/table4_ogb.cc.o.d"
  "table4_ogb"
  "table4_ogb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ogb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
