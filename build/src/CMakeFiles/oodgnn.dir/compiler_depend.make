# Empty compiler generated dependencies file for oodgnn.
# This may be replaced when dependencies are built.
