file(REMOVE_RECURSE
  "liboodgnn.a"
)
