
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decorrelation.cc" "src/CMakeFiles/oodgnn.dir/core/decorrelation.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/core/decorrelation.cc.o.d"
  "/root/repo/src/core/dependence.cc" "src/CMakeFiles/oodgnn.dir/core/dependence.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/core/dependence.cc.o.d"
  "/root/repo/src/core/hsic.cc" "src/CMakeFiles/oodgnn.dir/core/hsic.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/core/hsic.cc.o.d"
  "/root/repo/src/core/ood_gnn.cc" "src/CMakeFiles/oodgnn.dir/core/ood_gnn.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/core/ood_gnn.cc.o.d"
  "/root/repo/src/core/rff.cc" "src/CMakeFiles/oodgnn.dir/core/rff.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/core/rff.cc.o.d"
  "/root/repo/src/core/weight_bank.cc" "src/CMakeFiles/oodgnn.dir/core/weight_bank.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/core/weight_bank.cc.o.d"
  "/root/repo/src/core/weight_optimizer.cc" "src/CMakeFiles/oodgnn.dir/core/weight_optimizer.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/core/weight_optimizer.cc.o.d"
  "/root/repo/src/data/molecule.cc" "src/CMakeFiles/oodgnn.dir/data/molecule.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/data/molecule.cc.o.d"
  "/root/repo/src/data/protein.cc" "src/CMakeFiles/oodgnn.dir/data/protein.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/data/protein.cc.o.d"
  "/root/repo/src/data/registry.cc" "src/CMakeFiles/oodgnn.dir/data/registry.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/data/registry.cc.o.d"
  "/root/repo/src/data/social.cc" "src/CMakeFiles/oodgnn.dir/data/social.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/data/social.cc.o.d"
  "/root/repo/src/data/splits.cc" "src/CMakeFiles/oodgnn.dir/data/splits.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/data/splits.cc.o.d"
  "/root/repo/src/data/superpixel.cc" "src/CMakeFiles/oodgnn.dir/data/superpixel.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/data/superpixel.cc.o.d"
  "/root/repo/src/data/triangles.cc" "src/CMakeFiles/oodgnn.dir/data/triangles.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/data/triangles.cc.o.d"
  "/root/repo/src/gnn/encoder.cc" "src/CMakeFiles/oodgnn.dir/gnn/encoder.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/encoder.cc.o.d"
  "/root/repo/src/gnn/factor_gcn.cc" "src/CMakeFiles/oodgnn.dir/gnn/factor_gcn.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/factor_gcn.cc.o.d"
  "/root/repo/src/gnn/gat_conv.cc" "src/CMakeFiles/oodgnn.dir/gnn/gat_conv.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/gat_conv.cc.o.d"
  "/root/repo/src/gnn/gcn_conv.cc" "src/CMakeFiles/oodgnn.dir/gnn/gcn_conv.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/gcn_conv.cc.o.d"
  "/root/repo/src/gnn/gin_conv.cc" "src/CMakeFiles/oodgnn.dir/gnn/gin_conv.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/gin_conv.cc.o.d"
  "/root/repo/src/gnn/model_zoo.cc" "src/CMakeFiles/oodgnn.dir/gnn/model_zoo.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/model_zoo.cc.o.d"
  "/root/repo/src/gnn/pna_conv.cc" "src/CMakeFiles/oodgnn.dir/gnn/pna_conv.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/pna_conv.cc.o.d"
  "/root/repo/src/gnn/pool_common.cc" "src/CMakeFiles/oodgnn.dir/gnn/pool_common.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/pool_common.cc.o.d"
  "/root/repo/src/gnn/readout.cc" "src/CMakeFiles/oodgnn.dir/gnn/readout.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/readout.cc.o.d"
  "/root/repo/src/gnn/sag_pool.cc" "src/CMakeFiles/oodgnn.dir/gnn/sag_pool.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/sag_pool.cc.o.d"
  "/root/repo/src/gnn/sage_conv.cc" "src/CMakeFiles/oodgnn.dir/gnn/sage_conv.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/sage_conv.cc.o.d"
  "/root/repo/src/gnn/topk_pool.cc" "src/CMakeFiles/oodgnn.dir/gnn/topk_pool.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/topk_pool.cc.o.d"
  "/root/repo/src/gnn/virtual_node.cc" "src/CMakeFiles/oodgnn.dir/gnn/virtual_node.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/gnn/virtual_node.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/oodgnn.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/batch.cc" "src/CMakeFiles/oodgnn.dir/graph/batch.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/graph/batch.cc.o.d"
  "/root/repo/src/graph/dataset.cc" "src/CMakeFiles/oodgnn.dir/graph/dataset.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/graph/dataset.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/oodgnn.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/graph/graph.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/CMakeFiles/oodgnn.dir/nn/batchnorm.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/nn/batchnorm.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/oodgnn.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/oodgnn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/oodgnn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/oodgnn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/oodgnn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/oodgnn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/oodgnn.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/nn/serialize.cc.o.d"
  "/root/repo/src/tensor/backend.cc" "src/CMakeFiles/oodgnn.dir/tensor/backend.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/tensor/backend.cc.o.d"
  "/root/repo/src/tensor/gradcheck.cc" "src/CMakeFiles/oodgnn.dir/tensor/gradcheck.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/tensor/gradcheck.cc.o.d"
  "/root/repo/src/tensor/kernels.cc" "src/CMakeFiles/oodgnn.dir/tensor/kernels.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/tensor/kernels.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/oodgnn.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/oodgnn.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/variable.cc" "src/CMakeFiles/oodgnn.dir/tensor/variable.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/tensor/variable.cc.o.d"
  "/root/repo/src/train/experiment.cc" "src/CMakeFiles/oodgnn.dir/train/experiment.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/train/experiment.cc.o.d"
  "/root/repo/src/train/metrics.cc" "src/CMakeFiles/oodgnn.dir/train/metrics.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/train/metrics.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/oodgnn.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/train/trainer.cc.o.d"
  "/root/repo/src/util/file.cc" "src/CMakeFiles/oodgnn.dir/util/file.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/util/file.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/oodgnn.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/util/flags.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/oodgnn.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/oodgnn.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/oodgnn.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/oodgnn.dir/util/table.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/oodgnn.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/oodgnn.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
