# Empty dependencies file for inspect_weights.
# This may be replaced when dependencies are built.
