file(REMOVE_RECURSE
  "CMakeFiles/inspect_weights.dir/inspect_weights.cpp.o"
  "CMakeFiles/inspect_weights.dir/inspect_weights.cpp.o.d"
  "inspect_weights"
  "inspect_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
