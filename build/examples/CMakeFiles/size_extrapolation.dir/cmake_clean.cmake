file(REMOVE_RECURSE
  "CMakeFiles/size_extrapolation.dir/size_extrapolation.cpp.o"
  "CMakeFiles/size_extrapolation.dir/size_extrapolation.cpp.o.d"
  "size_extrapolation"
  "size_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
