# Empty compiler generated dependencies file for size_extrapolation.
# This may be replaced when dependencies are built.
