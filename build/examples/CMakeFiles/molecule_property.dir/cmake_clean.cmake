file(REMOVE_RECURSE
  "CMakeFiles/molecule_property.dir/molecule_property.cpp.o"
  "CMakeFiles/molecule_property.dir/molecule_property.cpp.o.d"
  "molecule_property"
  "molecule_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
