# Empty compiler generated dependencies file for molecule_property.
# This may be replaced when dependencies are built.
