// Quickstart: train OOD-GNN on a size-shifted synthetic benchmark and
// compare its out-of-distribution accuracy against a plain GIN.
//
//   ./quickstart [--epochs N]

#include <cstdio>

#include "src/data/triangles.h"
#include "src/train/trainer.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);

  // 1. Build a dataset. TRIANGLES trains on graphs with 4-25 nodes and
  //    tests on graphs with up to 100 nodes (a size distribution shift).
  oodgnn::TrianglesConfig data_config;
  data_config.num_train = 300;
  data_config.num_valid = 60;
  data_config.num_test = 120;
  oodgnn::GraphDataset dataset =
      oodgnn::MakeTrianglesDataset(data_config, /*seed=*/7);
  std::printf("dataset: %zu graphs, %d-dim features, %d classes\n",
              dataset.graphs.size(), dataset.feature_dim,
              dataset.num_tasks);

  // 2. Configure training. OOD-GNN adds the reweighting config on top
  //    of the shared encoder settings.
  oodgnn::TrainConfig config;
  config.epochs = flags.GetInt("epochs", 20);
  config.batch_size = 32;
  config.lr = 1e-3f;
  config.encoder.hidden_dim = 32;
  config.encoder.num_layers = 3;
  config.encoder.readout = oodgnn::ReadoutKind::kSum;  // GIN convention for TU-style data.
  config.ood.num_global_groups = 1;   // K of the global-local estimator.
  config.ood.momentum = 0.9f;         // γ of the momentum update.
  config.ood.rff.num_functions = 1;   // Q random Fourier features/dim.

  // 3. Train both models and compare OOD test accuracy.
  oodgnn::TrainResult gin =
      oodgnn::TrainAndEvaluate(oodgnn::Method::kGin, dataset, config);
  oodgnn::TrainResult ood =
      oodgnn::TrainAndEvaluate(oodgnn::Method::kOodGnn, dataset, config);

  std::printf("\n%-8s  train acc  OOD test acc\n", "");
  std::printf("GIN       %.3f      %.3f\n", gin.train_metric,
              gin.test_metric);
  std::printf("OOD-GNN   %.3f      %.3f\n", ood.train_metric,
              ood.test_metric);
  std::printf("\nOOD-GNN learned %zu non-trivial sample weights in its "
              "final epoch.\n",
              ood.final_weights.size());
  return 0;
}
