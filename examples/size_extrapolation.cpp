// Train-small / test-large size extrapolation (the paper's Fig. 1a
// motivation) on the protein benchmark, with a look at the sample
// weights OOD-GNN learns: graphs whose representations carry the
// spurious size↔label correlation are down-weighted.
//
//   ./size_extrapolation [--epochs N]

#include <algorithm>
#include <cstdio>

#include "src/data/protein.h"
#include "src/train/trainer.h"
#include "src/util/flags.h"
#include "src/util/stats.h"

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);

  oodgnn::ProteinConfig data_config = oodgnn::Proteins25Config();
  oodgnn::GraphDataset dataset =
      oodgnn::MakeProteinDataset(data_config, /*seed=*/11);

  int train_max = 0;
  int test_max = 0;
  for (size_t idx : dataset.train_idx) {
    train_max = std::max(train_max, dataset.graphs[idx].num_nodes());
  }
  for (size_t idx : dataset.test_idx) {
    test_max = std::max(test_max, dataset.graphs[idx].num_nodes());
  }
  std::printf(
      "protein benchmark: train on graphs up to %d nodes, test on "
      "graphs up to %d nodes\n",
      train_max, test_max);

  oodgnn::TrainConfig config;
  config.epochs = flags.GetInt("epochs", 25);
  config.batch_size = 64;
  config.lr = 1e-3f;
  config.encoder.hidden_dim = 32;
  config.encoder.num_layers = 3;
  config.encoder.readout = oodgnn::ReadoutKind::kSum;

  std::printf("\n%-12s train acc   OOD-test acc\n", "method");
  oodgnn::TrainResult ood_result;
  for (oodgnn::Method method :
       {oodgnn::Method::kGin, oodgnn::Method::kSagPool,
        oodgnn::Method::kOodGnn}) {
    oodgnn::TrainResult result =
        oodgnn::TrainAndEvaluate(method, dataset, config);
    std::printf("%-12s %.3f       %.3f\n", oodgnn::MethodName(method),
                result.train_metric, result.test_metric);
    if (method == oodgnn::Method::kOodGnn) ood_result = result;
  }

  // Inspect the learned reweighting (Fig. 4 style).
  std::vector<double> weights(ood_result.final_weights.begin(),
                              ood_result.final_weights.end());
  if (!weights.empty()) {
    std::printf("\nlearned sample weights (final epoch): mean=%s\n",
                oodgnn::MeanStdString(weights, 3).c_str());
    std::printf("%s", oodgnn::RenderHistogram(
                          oodgnn::MakeHistogram(weights, 10))
                          .c_str());
  }
  return 0;
}
