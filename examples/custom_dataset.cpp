// Plugging a user-defined dataset into the library: build Graph
// objects by hand, describe the task in a GraphDataset, and train any
// method — or drive the lower-level pieces (encoder, reweighter,
// optimizer) yourself for full control of the training loop.
//
//   ./custom_dataset

#include <cstdio>

#include "src/core/ood_gnn.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/train/trainer.h"
#include "src/util/rng.h"

namespace {

/// A toy binary task: cycles (label 1) vs paths (label 0), with a
/// one-hot degree feature. Even this 30-line generator exercises the
/// whole pipeline.
oodgnn::GraphDataset MakeCyclesVsPaths(int per_class, uint64_t seed) {
  oodgnn::Rng rng(seed);
  oodgnn::GraphDataset dataset;
  dataset.name = "cycles-vs-paths";
  dataset.task_type = oodgnn::TaskType::kMulticlass;
  dataset.num_tasks = 2;
  dataset.feature_dim = 4;

  for (int i = 0; i < 2 * per_class; ++i) {
    const int label = i % 2;
    const int n = static_cast<int>(rng.UniformInt(5, 16));
    oodgnn::Graph graph(n, dataset.feature_dim);
    for (int v = 0; v + 1 < n; ++v) graph.AddUndirectedEdge(v, v + 1);
    if (label == 1) graph.AddUndirectedEdge(n - 1, 0);  // Close the cycle.
    std::vector<int> degrees = graph.InDegrees();
    for (int v = 0; v < n; ++v) {
      graph.x.at(v, std::min(degrees[static_cast<size_t>(v)], 3)) = 1.f;
    }
    graph.label = label;
    const size_t idx = dataset.graphs.size();
    if (i < per_class) {
      dataset.train_idx.push_back(idx);
    } else if (i < per_class + per_class / 2) {
      dataset.valid_idx.push_back(idx);
    } else {
      dataset.test_idx.push_back(idx);
    }
    dataset.graphs.push_back(std::move(graph));
  }
  dataset.Validate();
  return dataset;
}

}  // namespace

int main() {
  oodgnn::GraphDataset dataset = MakeCyclesVsPaths(120, /*seed=*/3);

  // --- High-level API: one call. ---
  oodgnn::TrainConfig config;
  config.epochs = 15;
  config.batch_size = 32;
  config.encoder.hidden_dim = 16;
  config.encoder.num_layers = 2;
  oodgnn::TrainResult result = oodgnn::TrainAndEvaluate(
      oodgnn::Method::kOodGnn, dataset, config);
  std::printf("high-level API: test accuracy %.3f\n", result.test_metric);

  // --- Low-level API: hand-rolled Algorithm 1 loop. ---
  oodgnn::Rng rng(1);
  oodgnn::EncoderConfig encoder;
  encoder.feature_dim = dataset.feature_dim;
  encoder.hidden_dim = 16;
  encoder.num_layers = 2;
  oodgnn::GraphPredictionModel model(oodgnn::Method::kOodGnn, encoder,
                                     dataset.num_tasks, &rng);
  oodgnn::Adam optimizer(model.Parameters(), 1e-3f);
  oodgnn::OodGnnConfig ood_config;
  oodgnn::OodGnnReweighter reweighter(model.representation_dim(),
                                      /*batch_size=*/32, ood_config, &rng);

  for (int epoch = 0; epoch < 10; ++epoch) {
    std::vector<size_t> order = dataset.train_idx;
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t begin = 0; begin + 2 <= order.size(); begin += 32) {
      const size_t end = std::min(order.size(), begin + 32);
      oodgnn::GraphBatch batch =
          oodgnn::MakeBatch(dataset.graphs, order, begin, end);
      // Algorithm 1: encode, learn weights on detached Z, weighted loss.
      oodgnn::Variable z = model.Encode(batch, /*training=*/true, &rng);
      std::vector<float> weights = reweighter.ComputeWeights(z.value());
      oodgnn::Variable logits = model.Classify(z, /*training=*/true);
      oodgnn::Variable loss =
          oodgnn::SoftmaxCrossEntropy(logits, batch.class_labels, weights);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
      epoch_loss += loss.value()[0];
      ++batches;
    }
    std::printf("  epoch %2d  weighted loss %.4f  decorrelation %.5f\n",
                epoch + 1, epoch_loss / batches,
                reweighter.last_decorrelation_loss());
  }
  const double accuracy = oodgnn::EvaluateSplit(
      &model, dataset, dataset.test_idx, /*batch_size=*/64, &rng);
  std::printf("low-level API:  test accuracy %.3f\n", accuracy);
  return 0;
}
