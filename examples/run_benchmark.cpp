// General-purpose command-line runner: train any of the nine methods on
// any of the fifteen benchmark datasets.
//
//   ./run_benchmark --dataset PROTEINS_25 --method OOD-GNN \
//       --epochs 20 --seeds 3 --hidden 32 --layers 3 [--scale 1.0]
//
// Prints per-seed and aggregated metrics on every split.

#include <cstdio>
#include <string>

#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/flags.h"
#include "src/util/stats.h"

namespace {

oodgnn::Method MethodFromName(const std::string& name) {
  for (oodgnn::Method method : oodgnn::AllMethods()) {
    if (name == oodgnn::MethodName(method)) return method;
  }
  std::fprintf(stderr, "unknown method '%s'; available:", name.c_str());
  for (oodgnn::Method method : oodgnn::AllMethods()) {
    std::fprintf(stderr, " %s", oodgnn::MethodName(method));
  }
  std::fprintf(stderr, "\n");
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: run_benchmark --dataset NAME --method NAME [--epochs N]\n"
        "       [--seeds N] [--hidden D] [--layers L] [--scale F]\n"
        "       [--batch N] [--lr F] [--threads N] [--verbose]\n"
        "       [--profile] [--trace-json=PATH]\n"
        "       [--checkpoint-every=N] [--checkpoint-dir=DIR] [--resume]\n"
        "datasets:");
    for (const std::string& name : oodgnn::AllDatasetNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  const std::string dataset_name =
      flags.GetString("dataset", "PROTEINS_25");
  const oodgnn::Method method =
      MethodFromName(flags.GetString("method", "OOD-GNN"));

  // Shared flag handling (threads, profiling, journal, checkpointing).
  oodgnn::BenchOptions options = oodgnn::BenchOptions::FromFlags(flags);
  // Keep this binary's historical default (the EncoderConfig default)
  // rather than the table binaries' 0.3.
  options.train.encoder.dropout =
      static_cast<float>(flags.GetDouble("dropout", 0.5));

  oodgnn::GraphDataset dataset = oodgnn::MakeDatasetByName(
      dataset_name, options.data_scale,
      static_cast<uint64_t>(flags.GetInt("seed", 17)));
  std::printf("%s: %zu graphs (%zu train / %zu valid / %zu test), %s\n",
              dataset.name.c_str(), dataset.graphs.size(),
              dataset.train_idx.size(), dataset.valid_idx.size(),
              dataset.test_idx.size(),
              oodgnn::TaskTypeName(dataset.task_type));

  const int seeds = options.seeds;
  oodgnn::MethodScores scores =
      oodgnn::RunSeeds(method, dataset, options.train, seeds);

  const bool percent = dataset.task_type != oodgnn::TaskType::kRegression;
  std::printf("\n%s on %s over %d seed(s):\n",
              oodgnn::MethodName(method), dataset.name.c_str(), seeds);
  std::printf("  train: %s\n",
              oodgnn::FormatCell(scores.train, percent).c_str());
  std::printf("  valid: %s\n",
              oodgnn::FormatCell(scores.valid, percent).c_str());
  std::printf("  test:  %s\n",
              oodgnn::FormatCell(scores.test, percent).c_str());
  if (!scores.test2.empty()) {
    std::printf("  %s: %s\n", dataset.test2_name.c_str(),
                oodgnn::FormatCell(scores.test2, percent).c_str());
  }
  std::printf("  parameters: %lld, last run %.1fs\n",
              static_cast<long long>(scores.last_run.num_parameters),
              scores.last_run.train_seconds);
  return 0;
}
