// General-purpose command-line runner: train any of the nine methods on
// any of the fifteen benchmark datasets.
//
//   ./run_benchmark --dataset PROTEINS_25 --method OOD-GNN \
//       --epochs 20 --seeds 3 --hidden 32 --layers 3 [--scale 1.0]
//
// Prints per-seed and aggregated metrics on every split.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/data/registry.h"
#include "src/graph/batch.h"
#include "src/nn/serialize.h"
#include "src/serve/inference.h"
#include "src/tensor/variable.h"
#include "src/train/experiment.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace {

oodgnn::Method MethodFromName(const std::string& name) {
  for (oodgnn::Method method : oodgnn::AllMethods()) {
    if (name == oodgnn::MethodName(method)) return method;
  }
  std::fprintf(stderr, "unknown method '%s'; available:", name.c_str());
  for (oodgnn::Method method : oodgnn::AllMethods()) {
    std::fprintf(stderr, " %s", oodgnn::MethodName(method));
  }
  std::fprintf(stderr, "\n");
  std::exit(1);
}

/// `--serve` smoke mode: push the dataset's test split through the
/// grad-free InferenceEngine from several submitter threads and check
/// every returned row bitwise against a direct no-grad forward. Returns
/// the process exit code.
int RunServeSmoke(const oodgnn::GraphDataset& dataset, oodgnn::Method method,
                  const oodgnn::TrainConfig& train,
                  const oodgnn::Flags& flags) {
  oodgnn::serve::ModelSpec spec;
  spec.method = method;
  spec.encoder = train.encoder;
  spec.encoder.feature_dim = dataset.feature_dim;
  spec.output_dim = dataset.OutputDim();

  oodgnn::serve::InferenceOptions options;
  options.num_workers = flags.GetInt("workers", 2);
  options.max_batch_graphs = flags.GetInt("serve-batch", 16);
  options.max_batch_wait_us = flags.GetInt("serve-wait-us", 200);

  oodgnn::Rng model_rng(static_cast<uint64_t>(train.seed));
  oodgnn::GraphPredictionModel model(spec.method, spec.encoder,
                                     spec.output_dim, &model_rng);
  oodgnn::serve::InferenceEngine engine(spec, options);
  const std::string model_file = flags.GetString("model-file", "");
  if (!model_file.empty()) {
    if (!engine.LoadModelFile(model_file)) {
      std::fprintf(stderr, "failed to load model file '%s'\n",
                   model_file.c_str());
      return 1;
    }
  } else {
    engine.SyncFrom(model);
  }

  std::vector<const oodgnn::Graph*> graphs;
  for (const size_t idx : dataset.test_idx) {
    graphs.push_back(&dataset.graphs[idx]);
  }
  if (graphs.empty()) {
    std::fprintf(stderr, "dataset has no test split to serve\n");
    return 1;
  }

  // Reference rows via a direct grad-free forward on the same weights.
  if (!model_file.empty()) {
    oodgnn::LoadModelState(model_file, &model);
  }
  std::vector<oodgnn::Tensor> reference;
  {
    oodgnn::NoGradGuard no_grad;
    oodgnn::Rng eval_rng(1);
    for (const oodgnn::Graph* g : graphs) {
      reference.push_back(
          model.Predict(oodgnn::GraphBatch::FromGraphs({g}), false, &eval_rng)
              .value());
    }
  }

  const int submitters = 4;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::pair<size_t, std::future<oodgnn::Tensor>>>>
      futures(static_cast<size_t>(submitters));
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      for (size_t i = static_cast<size_t>(s); i < graphs.size();
           i += static_cast<size_t>(submitters)) {
        futures[static_cast<size_t>(s)].emplace_back(i,
                                                     engine.Submit(*graphs[i]));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  size_t mismatches = 0;
  for (auto& shard : futures) {
    for (auto& [i, future] : shard) {
      const oodgnn::Tensor row = future.get();
      const oodgnn::Tensor& want = reference[i];
      if (!row.SameShape(want) ||
          std::memcmp(row.data(), want.data(),
                      sizeof(float) * static_cast<size_t>(row.size())) != 0) {
        ++mismatches;
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const oodgnn::serve::InferenceStats stats = engine.stats();
  std::printf("serve smoke: %s, %zu test graphs, %d workers, batch<=%d, "
              "wait %d us\n",
              oodgnn::MethodName(method), graphs.size(), options.num_workers,
              options.max_batch_graphs, options.max_batch_wait_us);
  std::printf("  %lld requests in %lld batches, %.1f ms total "
              "(%.1f graphs/sec, %.1f us/graph)\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.batches), seconds * 1e3,
              static_cast<double>(graphs.size()) / seconds,
              seconds * 1e6 / static_cast<double>(graphs.size()));
  std::printf("  bitwise vs direct no-grad forward: %s\n",
              mismatches == 0 ? "OK" : "DIVERGED");
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: run_benchmark --dataset NAME --method NAME [--epochs N]\n"
        "       [--seeds N] [--hidden D] [--layers L] [--scale F]\n"
        "       [--batch N] [--lr F] [--threads N] [--verbose]\n"
        "       [--profile] [--trace-json=PATH]\n"
        "       [--checkpoint-every=N] [--checkpoint-dir=DIR] [--resume]\n"
        "       [--serve [--workers N] [--serve-batch N] [--serve-wait-us N]\n"
        "        [--model-file PATH]]\n"
        "datasets:");
    for (const std::string& name : oodgnn::AllDatasetNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  const std::string dataset_name =
      flags.GetString("dataset", "PROTEINS_25");
  const oodgnn::Method method =
      MethodFromName(flags.GetString("method", "OOD-GNN"));

  // Shared flag handling (threads, profiling, journal, checkpointing).
  oodgnn::BenchOptions options = oodgnn::BenchOptions::FromFlags(flags);
  // Keep this binary's historical default (the EncoderConfig default)
  // rather than the table binaries' 0.3.
  options.train.encoder.dropout =
      static_cast<float>(flags.GetDouble("dropout", 0.5));

  oodgnn::GraphDataset dataset = oodgnn::MakeDatasetByName(
      dataset_name, options.data_scale,
      static_cast<uint64_t>(flags.GetInt("seed", 17)));
  std::printf("%s: %zu graphs (%zu train / %zu valid / %zu test), %s\n",
              dataset.name.c_str(), dataset.graphs.size(),
              dataset.train_idx.size(), dataset.valid_idx.size(),
              dataset.test_idx.size(),
              oodgnn::TaskTypeName(dataset.task_type));

  if (flags.Has("serve")) {
    return RunServeSmoke(dataset, method, options.train, flags);
  }

  const int seeds = options.seeds;
  oodgnn::MethodScores scores =
      oodgnn::RunSeeds(method, dataset, options.train, seeds);

  const bool percent = dataset.task_type != oodgnn::TaskType::kRegression;
  std::printf("\n%s on %s over %d seed(s):\n",
              oodgnn::MethodName(method), dataset.name.c_str(), seeds);
  std::printf("  train: %s\n",
              oodgnn::FormatCell(scores.train, percent).c_str());
  std::printf("  valid: %s\n",
              oodgnn::FormatCell(scores.valid, percent).c_str());
  std::printf("  test:  %s\n",
              oodgnn::FormatCell(scores.test, percent).c_str());
  if (!scores.test2.empty()) {
    std::printf("  %s: %s\n", dataset.test2_name.c_str(),
                oodgnn::FormatCell(scores.test2, percent).c_str());
  }
  std::printf("  parameters: %lld, last run %.1fs\n",
              static_cast<long long>(scores.last_run.num_parameters),
              scores.last_run.train_seconds);
  return 0;
}
