// Scaffold-shift drug-property prediction (the paper's Fig. 1c
// motivation): molecules are split so the test set contains only
// scaffolds never seen in training. A plain GIN latches onto
// scaffold-correlated decoy motifs; OOD-GNN's representation
// decorrelation weakens that shortcut.
//
//   ./molecule_property [--dataset BACE] [--epochs N]

#include <cstdio>
#include <map>

#include "src/data/molecule.h"
#include "src/train/trainer.h"
#include "src/util/flags.h"

namespace {

void PrintScaffoldBreakdown(const oodgnn::GraphDataset& dataset) {
  std::map<int64_t, int> train_scaffolds;
  std::map<int64_t, int> test_scaffolds;
  for (size_t idx : dataset.train_idx) {
    ++train_scaffolds[dataset.graphs[idx].scaffold_id];
  }
  for (size_t idx : dataset.test_idx) {
    ++test_scaffolds[dataset.graphs[idx].scaffold_id];
  }
  int overlap = 0;
  for (const auto& [scaffold, count] : test_scaffolds) {
    if (train_scaffolds.count(scaffold)) ++overlap;
  }
  std::printf(
      "scaffold split: %zu train scaffolds, %zu test scaffolds, "
      "%d shared (OGB-style split keeps rare scaffolds for testing)\n",
      train_scaffolds.size(), test_scaffolds.size(), overlap);
}

}  // namespace

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);
  const std::string name = flags.GetString("dataset", "BACE");

  oodgnn::MoleculeDatasetSpec spec =
      oodgnn::GetOgbMoleculeSpec(name, /*scale=*/1.0);
  oodgnn::GraphDataset dataset = oodgnn::MakeMoleculeDataset(spec, 17);
  std::printf("dataset %s: %zu molecules, avg %.1f atoms, %d task(s)\n",
              dataset.name.c_str(), dataset.graphs.size(),
              dataset.AverageNodes(), dataset.num_tasks);
  PrintScaffoldBreakdown(dataset);

  oodgnn::TrainConfig config;
  config.epochs = flags.GetInt("epochs", 20);
  config.batch_size = 64;
  config.lr = 1e-3f;
  config.encoder.hidden_dim = 32;
  config.encoder.num_layers = 3;

  const bool regression =
      dataset.task_type == oodgnn::TaskType::kRegression;
  const char* metric = regression ? "RMSE (lower=better)"
                                  : "ROC-AUC (higher=better)";
  std::printf("\n%-12s train %s   OOD-test %s\n", "method", metric, metric);
  for (oodgnn::Method method :
       {oodgnn::Method::kGin, oodgnn::Method::kOodGnn}) {
    oodgnn::TrainResult result =
        oodgnn::TrainAndEvaluate(method, dataset, config);
    std::printf("%-12s %.3f                       %.3f\n",
                oodgnn::MethodName(method), result.train_metric,
                result.test_metric);
  }
  return 0;
}
