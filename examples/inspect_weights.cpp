// Inspecting what the reweighting actually does: train OOD-GNN on a
// scaffold-shifted molecule benchmark, then correlate each training
// molecule's learned sample weight with its decoy-motif load (halogen
// atoms — part of the generator's non-causal, scaffold-correlated
// decoration) and with its causal-motif load (O/N functional atoms).
//
//   ./inspect_weights [--dataset BACE] [--epochs N]

#include <cmath>
#include <cstdio>

#include "src/data/molecule.h"
#include "src/train/trainer.h"
#include "src/util/flags.h"
#include "src/util/stats.h"

namespace {

/// Pearson correlation of two equally sized samples.
double Pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = x.size();
  const double mx = oodgnn::Mean(x);
  const double my = oodgnn::Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  const double denom = std::sqrt(sxx * syy);
  return denom > 1e-12 ? sxy / denom : 0.0;
}

/// Counts atoms of the given one-hot type columns in a molecule graph.
double CountAtomTypes(const oodgnn::Graph& graph,
                      std::initializer_list<int> type_columns) {
  double count = 0.0;
  for (int v = 0; v < graph.num_nodes(); ++v) {
    for (int c : type_columns) {
      count += graph.x.at(v, c);
    }
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);
  const std::string name = flags.GetString("dataset", "BACE");
  oodgnn::GraphDataset dataset = oodgnn::MakeMoleculeDataset(
      oodgnn::GetOgbMoleculeSpec(name, 1.0), /*seed=*/17);

  oodgnn::TrainConfig config;
  config.epochs = flags.GetInt("epochs", 20);
  config.batch_size = 64;
  config.encoder.hidden_dim = 32;
  config.encoder.num_layers = 3;
  oodgnn::TrainResult result = oodgnn::TrainAndEvaluate(
      oodgnn::Method::kOodGnn, dataset, config);
  std::printf("%s: OOD test metric %.3f after %d epochs\n", name.c_str(),
              result.test_metric, config.epochs);

  // Align the final-epoch weights with per-molecule statistics.
  // Atom-type one-hot columns: F=3, Cl=5, Br=7 (decoy halogens);
  // N=1, O=2 (the causal hydroxyl/amine/carboxyl groups are N/O-rich).
  std::vector<double> weights;
  std::vector<double> halogens;
  std::vector<double> causal_atoms;
  std::vector<double> sizes;
  for (size_t i = 0; i < result.final_weights.size(); ++i) {
    const oodgnn::Graph& graph =
        dataset.graphs[result.final_weight_graphs[i]];
    weights.push_back(result.final_weights[i]);
    halogens.push_back(CountAtomTypes(graph, {3, 5, 7}));
    causal_atoms.push_back(CountAtomTypes(graph, {1, 2}));
    sizes.push_back(graph.num_nodes());
  }
  std::printf("collected %zu (weight, molecule) pairs\n", weights.size());
  std::printf("weight distribution: mean=%s\n",
              oodgnn::MeanStdString(weights, 3).c_str());
  std::printf("corr(weight, #halogen decoy atoms) = %+.3f\n",
              Pearson(weights, halogens));
  std::printf("corr(weight, #N/O causal atoms)    = %+.3f\n",
              Pearson(weights, causal_atoms));
  std::printf("corr(weight, molecule size)        = %+.3f\n",
              Pearson(weights, sizes));
  std::printf(
      "\nReading: the reweighting shifts mass between molecules so that\n"
      "representation dimensions decorrelate; a non-zero correlation\n"
      "with the decoy load shows the weights react to the planted\n"
      "spurious channel rather than being uniform noise.\n");
  return 0;
}
